"""Cycle-skipping envelope-following transient engine.

The paper's long scenarios — startup (Fig 16), supply loss, regulation
steps, keyless-entry polling — span hundreds to thousands of carrier
cycles whose interesting content is the *envelope*.  Integrating every
cycle wastes almost all of the work: inside a burst of a few cycles
the amplitude barely moves, and the averaged describing-function
dynamics (:class:`~repro.envelope.dynamics.EnvelopeModel`) predict the
slow amplitude evolution to well under a percent.

:func:`run_transient_envelope` exploits that separation of scales:

1. **Anchor** — integrate ``resolve_cycles`` carrier-resolved cycles
   on the fixed grid (the bit-exact :mod:`transient` machinery) and
   extract the amplitude of the differential tank voltage from the
   last full cycle.
2. **Skip** — advance the amplitude by ``N`` carrier periods with the
   envelope ODE, then *jump* the MNA state: every unknown and every
   reactive integrator state is scaled about its cycle mean by the
   predicted amplitude ratio, which preserves the carrier phase while
   re-seeding the oscillation at the predicted envelope.
3. **Re-anchor** — integrate a short carrier-resolved correction
   burst; the settled amplitude is compared against the model's own
   prediction for the same interval, and the residual controls ``N``
   adaptively — shrink on mismatch (the model is wrong here, resolve
   more), grow on agreement (the model is trustworthy, skip more).

``skip="off"`` delegates to :func:`~.transient.run_transient`
unchanged, so the fallback path is bit-identical to the existing
engine by construction.  All skipping happens on the canonical fixed
grid (time is always ``k * dt`` for an integer ``k``), so resolved
segments of an envelope run line up exactly with the plain engine's
samples.

Warm starts
-----------
Campaigns sweep many nearby parameter draws; the settled skip length
of one sample is an excellent initial guess for the next.  The
``warm_start`` mapping (``{"skip": N, "amplitude": A}``, as published
in a previous run's ``stats["envelope"]["final"]``) seeds the skip
length; the first re-anchor acts as the acceptance test — a mismatch
beyond tolerance *rejects* the warm start and falls back to the cold
``skip_initial`` (see ``stats["envelope"]["warm_start"]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..envelope.dynamics import EnvelopeModel
from ..errors import SimulationError
from .backend import resolve_backend
from .dcop import solve_dc
from .netlist import Circuit
from .transient import (
    TransientOptions,
    TransientResult,
    _RecordingBuffer,
    _resolve_recording,
    _StepSolver,
    run_transient,
)
from .assembly import TransientAssembly

__all__ = ["EnvelopeOptions", "run_transient_envelope"]

#: Amplitudes below this are treated as "no oscillation yet": the
#: describing-function predictor still applies (exponential growth
#: regime) but a zero amplitude cannot be scaled, so the engine keeps
#: resolving until the seed kick shows up in the waveform.
_AMPLITUDE_FLOOR = 1e-15


@dataclass
class EnvelopeOptions:
    """Configuration of the cycle-skipping envelope engine.

    Parameters
    ----------
    period:
        Carrier period ``T``.  Must be an integer number of ``dt``
        steps (within 1%) so skips stay on the canonical grid.
    nodes:
        ``(positive, negative)`` tank nodes whose differential voltage
        defines the envelope amplitude.
    model:
        The averaged amplitude dynamics used as the skip predictor.
    skip:
        ``"on"`` enables cycle skipping; ``"off"`` delegates to the
        plain engine (bit-identical).
    resolve_cycles:
        Carrier cycles integrated in the initial anchor burst.
    correct_cycles:
        Carrier cycles integrated in each re-anchor correction burst.
    skip_initial / skip_min / skip_max:
        Initial / minimum / maximum skipped cycles per jump.
    tolerance:
        Relative amplitude mismatch at a re-anchor above which the
        skip length shrinks (and a warm start is rejected); agreement
        below ``tolerance / 4`` grows it.
    grow / shrink:
        Multiplicative skip-length adaptation factors.
    warm_start:
        Optional ``{"skip": N, "amplitude": A}`` mapping from a
        previous run's ``stats["envelope"]["final"]``.
    """

    period: float = 0.0
    nodes: Tuple[str, str] = ("", "")
    model: Optional[EnvelopeModel] = None
    skip: str = "on"
    resolve_cycles: int = 4
    correct_cycles: int = 2
    skip_initial: int = 8
    skip_min: int = 1
    skip_max: int = 256
    tolerance: float = 0.02
    grow: float = 2.0
    shrink: float = 0.25
    warm_start: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.skip not in ("on", "off"):
            raise SimulationError("skip must be 'on' or 'off'")
        if self.skip == "off":
            return
        if self.period <= 0:
            raise SimulationError("period must be positive")
        if self.model is None:
            raise SimulationError("skip='on' requires an EnvelopeModel")
        if len(self.nodes) != 2 or not all(self.nodes):
            raise SimulationError("nodes must name the two tank nodes")
        if self.resolve_cycles < 1 or self.correct_cycles < 1:
            raise SimulationError(
                "resolve_cycles and correct_cycles must be >= 1"
            )
        if not 1 <= self.skip_min <= self.skip_initial <= self.skip_max:
            raise SimulationError(
                "need skip_min <= skip_initial <= skip_max (all >= 1)"
            )
        if self.tolerance <= 0:
            raise SimulationError("tolerance must be positive")
        if self.grow <= 1.0 or not 0 < self.shrink < 1.0:
            raise SimulationError("need grow > 1 and 0 < shrink < 1")


class _CycleRing:
    """Rolling window of the last carrier cycle's committed states.

    Keeps ``n`` per-step snapshots of the solution vector and the
    reactive integrator state so the amplitude and the cycle means —
    the two inputs of the skip jump — come from exactly one full
    period of resolved samples.
    """

    def __init__(self, n: int, size: int, n_reactive: int):
        self.n = int(n)
        self.x = np.empty((self.n, size))
        self.v = np.empty((self.n, n_reactive))
        self.i = np.empty((self.n, n_reactive))
        self.count = 0
        self._head = 0

    def push(self, x: np.ndarray, v: np.ndarray, i: np.ndarray) -> None:
        h = self._head
        self.x[h] = x
        self.v[h] = v
        self.i[h] = i
        self._head = (h + 1) % self.n
        self.count += 1

    @property
    def full(self) -> bool:
        return self.count >= self.n

    def reset(self) -> None:
        self.count = 0
        self._head = 0

    def amplitude(self, diff: np.ndarray) -> float:
        """Peak amplitude of ``x @ diff`` over the stored cycle."""
        d = self.x.dot(diff)
        return 0.5 * float(d.max() - d.min())

    def means(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            self.x.mean(axis=0),
            self.v.mean(axis=0),
            self.i.mean(axis=0),
        )


def _steps_per_cycle(options: TransientOptions, envelope: EnvelopeOptions) -> int:
    ratio = envelope.period / options.dt
    spc = int(round(ratio))
    if spc < 4 or abs(ratio - spc) > 0.01 * spc:
        raise SimulationError(
            f"period/dt = {ratio:.3f} must be an integer >= 4 (within 1%) "
            "so skipped cycles stay on the fixed grid"
        )
    return spc


def run_transient_envelope(
    circuit: Circuit,
    options: TransientOptions,
    envelope: EnvelopeOptions,
) -> TransientResult:
    """Envelope-following transient: resolve, skip, re-anchor.

    Returns a :class:`~.transient.TransientResult` whose ``t`` grid is
    ragged — resolved segments carry every ``record_stride``-th fixed
    step, each skip contributes its single landing sample — and whose
    ``stats["envelope"]`` records per-segment provenance
    (``segments`` with ``kind`` ``"resolved"``/``"skipped"``, a
    per-record ``provenance`` list, resolved/skipped cycle counters,
    the skip-length adaptation history, and the ``final`` state for
    warm-starting a neighbouring run).
    """
    if envelope.skip == "off":
        result = run_transient(circuit, options)
        n_records = len(result.t)
        result.stats["envelope"] = {
            "skip": "off",
            "resolved_cycles": (
                options.t_stop / envelope.period
                if envelope.period > 0
                else None
            ),
            "skipped_cycles": 0,
            "segments": [
                {"kind": "resolved", "t0": 0.0, "t1": options.t_stop}
            ],
            "provenance": ["resolved"] * n_records,
        }
        return result

    if options.step_control != "fixed":
        raise SimulationError(
            "cycle skipping requires step_control='fixed' (skips are "
            "whole carrier periods on the canonical grid)"
        )
    if options.phases is not None:
        raise SimulationError("phases and cycle skipping are exclusive")
    spc = _steps_per_cycle(options, envelope)
    total_steps = int(round(options.t_stop / options.dt))
    dt = options.dt
    period = spc * dt  # grid-exact period

    # -- engine setup (the plain fixed-grid engine, inlined) ---------------
    size = circuit.prepare()
    backend = resolve_backend(options.backend, size)
    if options.use_dc_operating_point:
        op = solve_dc(circuit, options=options.newton, backend=backend)
        x = op.x.copy()
    else:
        x = np.zeros(size)
    method = options.resolved_method()
    assembly = TransientAssembly(
        circuit,
        dt,
        method,
        options.newton.gmin,
        max_dt_entries=options.dt_cache_size,
        backend=backend,
    )
    reactive = assembly.reactive
    reactive.init_state(x)
    states: Dict[str, object] = {}
    for component in circuit:
        if component.name in assembly.vectorized_names:
            continue
        state = component.init_state(x)
        if state is not None:
            states[component.name] = state
    if states:
        raise SimulationError(
            "cycle skipping requires stateless non-reactive components; "
            f"components {sorted(states)} carry generic integrator state "
            "the amplitude jump cannot rescale"
        )
    solver = _StepSolver(
        assembly,
        options.newton,
        options.jacobian,
        options.chord_refactor_ratio,
        guards=options.guards,
        condition_limit=options.condition_limit,
    )
    record_indices, recorded_nodes, n_columns = _resolve_recording(
        circuit, options
    )
    capacity = total_steps // options.record_stride + 2
    recorder = _RecordingBuffer(n_columns, capacity, record_indices)
    stride = options.record_stride

    # Differential projection vector for the amplitude measurement.
    diff = np.zeros(size)
    for node, sign in zip(envelope.nodes, (1.0, -1.0)):
        idx = circuit.node_index(node)
        if idx >= 0:
            diff[idx] = sign

    model = envelope.model
    cyc = _CycleRing(spc, size, reactive.n)
    provenance: List[str] = []
    segments: List[Dict[str, object]] = []
    skip_history: List[Dict[str, object]] = []
    resolved_cycles = 0.0
    skipped_cycles = 0
    multistep = method.is_multistep
    target_order = method.max_order

    def burst(x: np.ndarray, k0: int, n_steps: int) -> np.ndarray:
        """``n_steps`` carrier-resolved fixed steps from global step
        ``k0``; mirrors the plain engine's fixed loop (order ramp,
        commit, stride recording) and feeds the cycle ring."""
        nonlocal resolved_cycles
        for s in range(1, n_steps + 1):
            k = k0 + s
            time = k * dt
            if multistep:
                order = method.usable_order(
                    target_order, assembly.history_points
                )
                if order != assembly.order:
                    assembly.set_dt(dt, order=order)
            rhs_lin = assembly.step_rhs(time, states, x)
            x = solver.step(x, rhs_lin, time, states)
            assembly.commit(x, time, states)
            if k % stride == 0:
                recorder.append(time, x)
                provenance.append("resolved")
            cyc.push(x, reactive.v, reactive.i)
        resolved_cycles += n_steps / spc
        if n_steps:
            segments.append(
                {
                    "kind": "resolved",
                    "t0": k0 * dt,
                    "t1": (k0 + n_steps) * dt,
                    "cycles": n_steps / spc,
                }
            )
        return x

    def jump(x: np.ndarray, scale: float, t_new: float) -> np.ndarray:
        """Rescale the full committed state about its cycle means by
        the predicted amplitude ratio and reseat it at ``t_new``."""
        x_mean, v_mean, i_mean = cyc.means()
        x_new = x_mean + scale * (x - x_mean)
        reactive.v = v_mean + scale * (reactive.v - v_mean)
        reactive.i = i_mean + scale * (reactive.i - i_mean)
        ring = reactive.ring
        ring.reset()
        ring.t_now = t_new
        if ring.depth:
            ring.set_current(reactive.v, reactive.i, reactive.n_caps)
        reactive._cterm = None
        cyc.reset()
        return x_new

    # -- main loop ---------------------------------------------------------
    recorder.append(0.0, x)
    provenance.append("resolved")

    warm = envelope.warm_start
    warm_status: Optional[str] = None
    warm_skip = 0
    warm_amp: Optional[float] = None
    skip_n = envelope.skip_initial
    if warm is not None:
        try:
            warm_skip = int(warm["skip"])  # type: ignore[index]
        except (KeyError, TypeError, ValueError):
            raise SimulationError(
                "warm_start must map 'skip' to an integer cycle count"
            ) from None
        warm_skip = max(envelope.skip_min, min(warm_skip, envelope.skip_max))
        amp = warm.get("amplitude") if hasattr(warm, "get") else None
        warm_amp = float(amp) if amp is not None else None  # type: ignore[arg-type]
        warm_status = "pending"

    k = 0
    anchor = min(envelope.resolve_cycles * spc, total_steps)
    x = burst(x, k, anchor)
    k += anchor
    amplitude = cyc.amplitude(diff) if cyc.full else 0.0

    while k < total_steps:
        remaining_cycles = (total_steps - k) // spc
        budget_cycles = remaining_cycles - envelope.correct_cycles
        n_skip = min(skip_n, budget_cycles)
        # The neighbour's converged skip length only applies once this
        # run's envelope reaches the amplitude regime it converged in
        # (a settled-regime length trusted during startup would jump
        # straight through the transient); cap the trial at half the
        # budget so a rejection still has cycles left to re-anchor.
        warm_try = warm_status == "pending" and (
            warm_amp is None
            or abs(amplitude - warm_amp)
            <= 0.5 * max(abs(warm_amp), _AMPLITUDE_FLOOR)
        )
        if warm_try:
            n_skip = min(
                max(n_skip, warm_skip),
                budget_cycles,
                max(envelope.skip_min, budget_cycles // 2),
            )
        if (
            n_skip < envelope.skip_min
            or not cyc.full
            or amplitude <= _AMPLITUDE_FLOOR
        ):
            # No room (or no measurable oscillation yet): resolve one
            # more cycle — or the ragged tail — and re-assess.
            n = min(spc, total_steps - k)
            x = burst(x, k, n)
            k += n
            amplitude = cyc.amplitude(diff) if cyc.full else 0.0
            continue

        # Predict, jump, land a provenance-tagged sample.
        a_pred = model.advance(amplitude, n_skip * period)
        t_new = (k + n_skip * spc) * dt
        segments.append(
            {
                "kind": "skipped",
                "t0": k * dt,
                "t1": t_new,
                "cycles": n_skip,
            }
        )
        x = jump(x, a_pred / amplitude, t_new)
        k += n_skip * spc
        skipped_cycles += n_skip
        recorder.append(t_new, x)
        provenance.append("skipped")

        # Re-anchor: short resolved burst, then judge the predictor.
        n = envelope.correct_cycles * spc
        x = burst(x, k, n)
        k += n
        a_meas = cyc.amplitude(diff)
        a_ref = model.advance(a_pred, envelope.correct_cycles * period)
        mismatch = abs(a_meas - a_ref) / max(abs(a_ref), _AMPLITUDE_FLOOR)
        skip_history.append(
            {
                "t": k * dt,
                "skip": n_skip,
                "mismatch": mismatch,
                "amplitude": a_meas,
            }
        )
        if mismatch > envelope.tolerance:
            if warm_try:
                # The neighbouring sample's skip length does not
                # transfer: reject the warm start, back to cold.
                warm_status = "rejected"
                skip_n = envelope.skip_initial
            skip_n = max(
                envelope.skip_min, int(skip_n * envelope.shrink)
            )
        else:
            if warm_try:
                warm_status = "accepted"
                skip_n = max(skip_n, n_skip)
            if mismatch < envelope.tolerance / 4.0:
                skip_n = min(
                    envelope.skip_max,
                    max(skip_n + 1, int(skip_n * envelope.grow)),
                )
        amplitude = a_meas

    times, records = recorder.arrays()
    stats: Dict[str, object] = {
        "strategy": solver.strategy,
        "backend": assembly.backend.name,
        "step_control": "fixed",
        "newton_iterations": solver.newton_iterations,
        "lu_refactorizations": solver.lu_refactorizations,
        "steps": int(round(resolved_cycles * spc)),
        "envelope": {
            "skip": "on",
            "period": period,
            "steps_per_cycle": spc,
            "total_cycles": total_steps / spc,
            "resolved_cycles": resolved_cycles,
            "skipped_cycles": skipped_cycles,
            "segments": segments,
            "provenance": provenance,
            "skip_history": skip_history,
            "warm_start": warm_status,
            "final": {"skip": skip_n, "amplitude": amplitude},
        },
    }
    return TransientResult(
        circuit=circuit,
        t=times,
        x=records,
        recorded_nodes=recorded_nodes,
        stats=stats,
    )
