"""The pre-optimization transient engine, preserved as a golden
baseline.

:func:`run_transient_reference` is the seed implementation of the
fixed-step transient analysis: it rebuilds the full dense MNA system
with a Python loop over *every* component at *every* Newton iteration
of *every* step, and records into Python lists finished by
``np.vstack``.  It is deliberately kept naive — its only job is to
define the waveforms the incremental-stamping engine in
:mod:`~repro.circuits.transient` must reproduce, which the golden
equivalence tests assert to ``rtol = 1e-9``.

Two shared pieces intentionally differ from the original seed text,
in both engines equally, so the equivalence tests isolate the
*assembly/solver* optimization:

* Newton damping clamps node voltages only (the seed transient loop
  clamped branch currents too, inconsistently with the DC solver);
  both engines use :func:`~repro.circuits.linsolve.damp_voltage_delta`.
* The dense solve with least-squares fallback lives in
  :func:`~repro.circuits.linsolve.solve_dense`.

Do not use this engine for real workloads; it exists for tests and
for the perf harness (``benchmarks/run_perf.py``), which times it to
report the optimized engine's speedup against the seed behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..errors import ConvergenceError, SimulationError
from .component import MNASystem, StampContext
from .dcop import NewtonOptions, solve_dc
from .integration import resolve_method
from .linsolve import damp_voltage_delta, solve_dense
from .netlist import Circuit
from .transient import TransientOptions, TransientResult

__all__ = ["run_transient_reference"]


def _newton_step(
    circuit: Circuit,
    x_guess: np.ndarray,
    states: Dict[str, object],
    time: float,
    dt: float,
    method,
    options: NewtonOptions,
) -> np.ndarray:
    x = x_guess.copy()
    nonlinear = circuit.has_nonlinear()
    n_nodes = circuit.n_nodes
    last_delta = np.inf
    for _iteration in range(options.max_iterations):
        system = MNASystem(circuit.size)
        ctx = StampContext(
            system=system,
            x=x,
            time=time,
            dt=dt,
            method=method.name,
            gmin=options.gmin,
            states=states,
            coeffs=method.base_coeffs(method.max_order),
        )
        for component in circuit:
            component.stamp(ctx)
        for i in range(circuit.n_nodes):
            system.add_G(i, i, options.gmin)
        x_new = solve_dense(system.G, system.rhs)
        if not nonlinear:
            return x_new
        delta, last_delta = damp_voltage_delta(
            x_new - x, n_nodes, options.max_step
        )
        x = x + delta
        tol = options.abstol_v + options.reltol * float(
            np.max(np.abs(x[:n_nodes]))
        )
        if last_delta < tol:
            return x
    raise ConvergenceError(
        f"transient Newton failed at t={time:.4e}",
        iterations=options.max_iterations,
        residual=last_delta,
    )


def run_transient_reference(
    circuit: Circuit, options: Optional[TransientOptions] = None
) -> TransientResult:
    """Integrate with the naive full-restamp engine (see module doc)."""
    options = options or TransientOptions()
    method = resolve_method(options.method)
    if method.is_multistep:
        # The seed engine's per-component states hold one previous
        # point; it predates (and must stay pinned to) the one-step
        # companion formulas.
        raise SimulationError(
            "run_transient_reference supports the one-step methods "
            f"('trap', 'be'); got {method.name!r}"
        )
    circuit.prepare()

    if options.use_dc_operating_point:
        op = solve_dc(circuit, options=options.newton)
        x = op.x.copy()
    else:
        x = np.zeros(circuit.size)

    states: Dict[str, object] = {}
    for component in circuit:
        state = component.init_state(x)
        if state is not None:
            states[component.name] = state

    n_steps = int(round(options.t_stop / options.dt))
    times: List[float] = [0.0]
    records: List[np.ndarray] = [x.copy()]
    time = 0.0
    for step in range(1, n_steps + 1):
        time = step * options.dt
        x = _newton_step(
            circuit, x, states, time, options.dt, method, options.newton
        )
        # Commit integrator states.
        ctx = StampContext(
            system=MNASystem(circuit.size),
            x=x,
            time=time,
            dt=options.dt,
            method=method.name,
            states=states,
            coeffs=method.base_coeffs(method.max_order),
        )
        for component in circuit:
            if component.name in states:
                states[component.name] = component.update_state(ctx)
        if step % options.record_stride == 0:
            times.append(time)
            records.append(x.copy())
    return TransientResult(
        circuit=circuit,
        t=np.asarray(times),
        x=np.vstack(records),
        stats={"strategy": "reference", "steps": n_steps},
    )
