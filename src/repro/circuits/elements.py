"""Passive elements: resistor, capacitor, inductor, ideal switch."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import NetlistError
from .component import ACStampContext, Component, StampContext

__all__ = ["Resistor", "Capacitor", "Inductor", "Switch"]


class Resistor(Component):
    """Linear resistor between two nodes."""

    supports_stamp_split = True

    def __init__(self, name: str, a: str, b: str, resistance: float):
        super().__init__(name, (a, b))
        if resistance <= 0.0 or not np.isfinite(resistance):
            raise NetlistError(f"{name}: resistance must be positive and finite")
        self.resistance = float(resistance)

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def stamp(self, ctx: StampContext) -> None:
        ctx.system.stamp_conductance(self._n[0], self._n[1], self.conductance)

    def stamp_static(self, ctx: StampContext) -> None:
        self.stamp(ctx)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        ctx.stamp_admittance(self._n[0], self._n[1], self.conductance)

    def current(self, x: np.ndarray) -> float:
        """Current flowing from node ``a`` to node ``b``."""
        va = x[self._n[0]] if self._n[0] >= 0 else 0.0
        vb = x[self._n[1]] if self._n[1] >= 0 else 0.0
        return (va - vb) * self.conductance


class _CapState:
    """Integrator state of a capacitor: previous voltage and current."""

    __slots__ = ("v", "i")

    def __init__(self, v: float, i: float):
        self.v = v
        self.i = i


class Capacitor(Component):
    """Linear capacitor.  Open in DC, companion model in transient.

    The companion conductance ``geq`` depends only on the step size
    and the integration method's leading coefficient, so it lands in
    the static half of the stamp split; the companion current ``ieq``
    tracks the integrator state and is re-stamped each step by
    :meth:`stamp_dynamic`.  Both formulas are driven entirely by the
    coefficients the method supplies (:class:`~repro.circuits.
    integration.StepCoeffs`) — the component knows no method names.
    """

    supports_stamp_split = True

    def __init__(self, name: str, a: str, b: str, capacitance: float, ic: Optional[float] = None):
        super().__init__(name, (a, b))
        if capacitance <= 0.0 or not np.isfinite(capacitance):
            raise NetlistError(f"{name}: capacitance must be positive and finite")
        self.capacitance = float(capacitance)
        #: Optional initial voltage for use_ic transient starts.
        self.ic = ic

    def _voltage(self, ctx: StampContext) -> float:
        return ctx.v(self._n[0]) - ctx.v(self._n[1])

    def companion_conductance(self, dt: float, coeffs) -> float:
        """``geq = lead * C / dt`` for the integrator coefficients."""
        return coeffs.lead * self.capacitance / dt

    def stamp(self, ctx: StampContext) -> None:
        if not ctx.is_transient:
            # Open circuit in DC; a tiny gmin keeps floating nodes solvable.
            ctx.system.stamp_conductance(self._n[0], self._n[1], ctx.gmin)
            return
        self.stamp_static(ctx)
        self.stamp_dynamic(ctx)

    def stamp_static(self, ctx: StampContext) -> None:
        geq = self.companion_conductance(ctx.dt, ctx.coeffs)
        ctx.system.stamp_conductance(self._n[0], self._n[1], geq)

    def stamp_dynamic(self, ctx: StampContext) -> None:
        co = ctx.coeffs.require_one_step(self.name)
        state: _CapState = ctx.states[self.name]
        geq = self.companion_conductance(ctx.dt, co)
        ieq = co.wv0 * (geq * state.v)
        if co.wd0:
            ieq += co.wd0 * state.i
        # Companion current source from a to b: i = geq*v + ieq
        ctx.system.stamp_current(self._n[0], self._n[1], ieq)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        ctx.stamp_admittance(self._n[0], self._n[1], 1j * ctx.omega * self.capacitance)

    def init_state(self, x: np.ndarray) -> _CapState:
        va = x[self._n[0]] if self._n[0] >= 0 else 0.0
        vb = x[self._n[1]] if self._n[1] >= 0 else 0.0
        v0 = self.ic if self.ic is not None else va - vb
        return _CapState(v=v0, i=0.0)

    def update_state(self, ctx: StampContext) -> _CapState:
        co = ctx.coeffs.require_one_step(self.name)
        v_new = self._voltage(ctx)
        state: _CapState = ctx.states[self.name]
        i_new = co.lead * self.capacitance * (v_new - state.v) / ctx.dt
        if co.wd0:
            i_new += co.wd0 * state.i
        return _CapState(v=v_new, i=i_new)


class _IndState:
    """Integrator state of an inductor: previous voltage and current."""

    __slots__ = ("v", "i")

    def __init__(self, v: float, i: float):
        self.v = v
        self.i = i


class Inductor(Component):
    """Linear inductor.  Short in DC, companion model in transient.

    Uses one branch-current unknown; positive branch current flows from
    node ``a`` through the inductor to node ``b``.
    """

    n_branches = 1
    supports_stamp_split = True

    def __init__(self, name: str, a: str, b: str, inductance: float, ic: Optional[float] = None):
        super().__init__(name, (a, b))
        if inductance <= 0.0 or not np.isfinite(inductance):
            raise NetlistError(f"{name}: inductance must be positive and finite")
        self.inductance = float(inductance)
        #: Optional initial current for use_ic transient starts.
        self.ic = ic

    def companion_resistance(self, dt: float, coeffs) -> float:
        """``req = lead * L / dt`` for the integrator coefficients."""
        return coeffs.lead * self.inductance / dt

    def stamp(self, ctx: StampContext) -> None:
        if ctx.is_transient:
            self.stamp_static(ctx)
            self.stamp_dynamic(ctx)
            return
        a, b = self._n
        br = self._b[0]
        sys = ctx.system
        # KCL: branch current leaves node a, enters node b.
        sys.add_G(a, br, 1.0)
        sys.add_G(b, br, -1.0)
        # Branch (KVL) row reads v(a) - v(b) = 0 (DC short).
        sys.add_G(br, a, 1.0)
        sys.add_G(br, b, -1.0)

    def stamp_static(self, ctx: StampContext) -> None:
        a, b = self._n
        br = self._b[0]
        sys = ctx.system
        # KCL: branch current leaves node a, enters node b.
        sys.add_G(a, br, 1.0)
        sys.add_G(b, br, -1.0)
        # Branch (KVL) row: v(a) - v(b) - req*i = <state terms>.
        sys.add_G(br, a, 1.0)
        sys.add_G(br, b, -1.0)
        sys.add_G(br, br, -self.companion_resistance(ctx.dt, ctx.coeffs))

    def stamp_dynamic(self, ctx: StampContext) -> None:
        co = ctx.coeffs.require_one_step(self.name)
        state: _IndState = ctx.states[self.name]
        req = self.companion_resistance(ctx.dt, co)
        # Branch-row state term: wv0*req*i_prev (+ wd0*v_prev for
        # methods that feed back the previous derivative).
        rhs = co.wv0 * (req * state.i)
        if co.wd0:
            rhs += co.wd0 * state.v
        ctx.system.add_rhs(self._b[0], rhs)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        a, b = self._n
        br = self._b[0]
        ctx.add_G(a, br, 1.0)
        ctx.add_G(b, br, -1.0)
        ctx.add_G(br, a, 1.0)
        ctx.add_G(br, b, -1.0)
        ctx.add_G(br, br, -1j * ctx.omega * self.inductance)

    def init_state(self, x: np.ndarray) -> _IndState:
        i0 = self.ic if self.ic is not None else float(x[self._b[0]])
        return _IndState(v=0.0, i=i0)

    def update_state(self, ctx: StampContext) -> _IndState:
        v_new = ctx.v(self._n[0]) - ctx.v(self._n[1])
        i_new = float(ctx.x[self._b[0]])
        return _IndState(v=v_new, i=i_new)

    def current(self, x: np.ndarray) -> float:
        """Branch current from node ``a`` to node ``b``."""
        return float(x[self._b[0]])


class Switch(Component):
    """Ideal switch modelled as a two-state resistor.

    The state is set programmatically (``switch.closed = True``) rather
    than by a controlling voltage, which is what the behavioural test
    benches need (enable signals, fault injection).  The state is
    frozen for the duration of one transient run (it is sampled when
    the cached base matrix is built); toggle it between runs, not
    inside one.
    """

    supports_stamp_split = True

    def __init__(
        self,
        name: str,
        a: str,
        b: str,
        r_on: float = 1.0,
        r_off: float = 1e12,
        closed: bool = False,
    ):
        super().__init__(name, (a, b))
        if r_on <= 0 or r_off <= 0 or r_on >= r_off:
            raise NetlistError(f"{name}: require 0 < r_on < r_off")
        self.r_on = float(r_on)
        self.r_off = float(r_off)
        self.closed = bool(closed)

    @property
    def resistance(self) -> float:
        return self.r_on if self.closed else self.r_off

    def stamp(self, ctx: StampContext) -> None:
        ctx.system.stamp_conductance(self._n[0], self._n[1], 1.0 / self.resistance)

    def stamp_static(self, ctx: StampContext) -> None:
        self.stamp(ctx)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        ctx.stamp_admittance(self._n[0], self._n[1], 1.0 / self.resistance)
