"""Batched lockstep transient engine: one time loop for S netlists.

The paper's headline claims are statistical — mismatch Monte-Carlo
and corner campaigns over the startup / supply-loss scenarios — and a
campaign is the same small MNA system solved S times with slightly
different element values.  Running the per-sample engine S times pays
the whole Python interpreter cost S times: S time loops, S Newton
drivers, S companion-state updates per step, for systems with a dozen
unknowns where the arithmetic itself is nearly free.

This module stacks the campaign instead: the S per-sample systems
become arrays ``G_base[S, n, n]`` / ``rhs[S, n]`` and **one** lockstep
time loop advances every sample together,

* batched linear algebra — ``numpy.linalg.inv`` on the ``(S, n, n)``
  stack once per step size, then every step's solve is one batched
  mat-vec (the ``linear`` strategy's cached-LU path, S-wide);
* the rank-1 Sherman–Morrison and rank-k Woodbury Newton fast paths
  of the per-sample engine, vectorized across the sample axis, with a
  **per-sample convergence mask**: samples whose Newton iteration has
  converged drop out of the working set while stragglers continue —
  ragged convergence costs only the stragglers;
* vectorized companion-state updates: capacitor/inductor integrator
  state lives in ``(S, m)`` arrays and one gather/scatter advances
  all samples;
* device linearization across samples in one call when the nonlinear
  devices declare a *batchable characteristic family*
  (``NonlinearVCCS.vector_pair`` — e.g. every Monte-Carlo instance of
  the tanh driver differs only in its ``(gm, IM)`` parameters).

Lockstep requires a shared time grid: fixed mode uses the common
``t_k = k*dt`` grid, adaptive mode drives one
:class:`~repro.circuits.stepcontrol.StepController` by the
**worst-sample** LTE (every sample meets tolerance on every accepted
step; the grid is simply as fine as the most demanding sample needs).

The per-sample engine (:func:`~repro.circuits.transient.run_transient`)
stays the reference: :func:`run_transient_batched` mirrors its solve
formulas elementwise, and the equivalence tests pin the two paths to
each other at rtol 1e-9.  Netlists the lockstep engine cannot stack —
differing topologies, nonlinear devices other than
:class:`~repro.circuits.controlled.NonlinearVCCS`, chord/full Jacobian
modes — raise :class:`BatchIncompatible`, which the campaign layer
(:mod:`repro.campaigns.vectorized`) catches to fall back to the
per-sample path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConvergenceError, SimulationError
from .assembly import DtCache, _HistoryRing, _ReactiveSet
from .backend import BlockDiagLU, KrylovBackend, resolve_backend
from .component import MNASystem, Component, StampContext, StampPattern, TripletSystem
from .controlled import NonlinearVCCS
from .dcop import NewtonOptions, OperatingPoint, solve_dc
from .elements import Capacitor, Inductor
from .health import (
    CONDITION_LIMIT,
    HealthReport,
    check_grid_invariants,
    nonfinite_sample_rows,
)
from .integration import IntegrationMethod, resolve_method
from .linsolve import damp_voltage_delta, solve_dense
from .netlist import Circuit
from .preflight import apply_preflight
from .sources import CurrentSource, VoltageSource
from .stepcontrol import StepController, collect_breakpoints
from .transient import (
    TransientOptions,
    TransientResult,
    _fixed_record_count,
    _resolve_recording,
    _RunAbort,
    _RunBudget,
)

__all__ = [
    "BatchIncompatible",
    "BatchedTransientAssembly",
    "BatchedOperatingPoints",
    "probe_stiffness_ratios",
    "run_transient_batched",
    "solve_dc_batched",
]


class BatchIncompatible(SimulationError):
    """The netlists cannot be executed as one lockstep batch.

    Structural problems (topology mismatch, unsupported devices,
    non-``"auto"`` Jacobian) raise during batched-assembly
    construction, before any stepping; a singular stacked base matrix
    raises when its step size's entry is built — at construction for
    the initial step size, but an *adaptive* run that walks onto a new
    step size whose system is singular raises mid-run.  The campaign
    layer catches either case and falls back to the per-sample engine
    (discarding any partial lockstep work)."""


def _bsolve(inv: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Batched ``x = G^-1 rhs``: ``(S, n, n) @ (S, n) -> (S, n)``."""
    return np.matmul(inv, rhs[..., np.newaxis])[..., 0]


# -- lockstep compatibility ---------------------------------------------------


def _check_lockstep(circuits: Sequence[Circuit]) -> None:
    """Validate that all samples share one MNA structure.

    Lockstep stacking requires identical topology: same components
    (names, types, node wiring, branch numbering) and same unknown
    ordering.  Element *values* are free to differ per sample — that
    is the whole point.
    """
    first = circuits[0]
    for s, circuit in enumerate(circuits[1:], start=1):
        if circuit.component_names != first.component_names:
            raise BatchIncompatible(
                f"sample {s} has different components than sample 0"
            )
        if circuit.node_names != first.node_names or circuit.size != first.size:
            raise BatchIncompatible(
                f"sample {s} has a different node space than sample 0"
            )
        for name in first.component_names:
            a, b = first[name], circuit[name]
            if type(a) is not type(b):
                raise BatchIncompatible(
                    f"component {name!r}: type differs between samples"
                )
            if a._n != b._n or a._b != b._b:
                raise BatchIncompatible(
                    f"component {name!r}: wiring differs between samples"
                )


class BatchedOperatingPoints:
    """DC operating points of S same-topology circuits, stacked.

    ``x`` is the ``(S, size)`` solution stack and ``iterations`` the
    per-sample Newton iteration counts — ragged, exactly as the
    per-sample :func:`~repro.circuits.dcop.solve_dc` calls they
    replace would report them.
    """

    def __init__(
        self,
        circuits: List[Circuit],
        x: np.ndarray,
        iterations: np.ndarray,
    ):
        self.circuits = circuits
        self.x = x
        self.iterations = iterations

    def __len__(self) -> int:
        return len(self.circuits)

    def op(self, s: int) -> OperatingPoint:
        """Sample ``s`` as a standard :class:`OperatingPoint`."""
        return OperatingPoint(
            self.circuits[s], self.x[s], int(self.iterations[s])
        )


def _bsolve_dc(G: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Batched dense solve with the scalar path's singular fallback.

    ``np.linalg.solve`` rejects the whole stack when any one matrix is
    singular; degrading to per-sample :func:`~repro.circuits.linsolve.
    solve_dense` keeps the scalar semantics — least-squares for the
    singular samples only.
    """
    try:
        return np.linalg.solve(G, rhs[..., None])[..., 0]
    except np.linalg.LinAlgError:
        return np.stack(
            [solve_dense(G[k], rhs[k]) for k in range(G.shape[0])]
        )


def solve_dc_batched(
    circuits: Sequence[Circuit],
    options: Optional[NewtonOptions] = None,
    x0: Optional[np.ndarray] = None,
    backend: object = "auto",
) -> BatchedOperatingPoints:
    """DC operating points of S same-topology circuits, stacked.

    The batched counterpart of :func:`~repro.circuits.dcop.solve_dc`:
    one Newton loop drives all S samples as ``(S, n, n)`` / ``(S, n)``
    stacks with a per-sample convergence mask, so the per-iteration
    work is the x-*dependent* stamps (the nonlinear devices) plus one
    batched linear solve — the x-independent stamps are assembled once
    per sample up front instead of on every iteration of every sample.

    Per-sample semantics are preserved exactly: each sample's damping,
    tolerance, and stopping decisions evaluate the same expressions as
    the scalar Newton, a converged sample's iterate freezes (its count
    is the iteration it converged on, ragged across the batch), and a
    sample that exhausts ``max_iterations`` falls back to the scalar
    :func:`solve_dc` continuation ladder from the original seed — so
    its ``(x, iterations)`` is the ladder's by construction.  Batches
    the lockstep vocabulary cannot stack (topology mismatch, nonlinear
    devices other than :class:`~repro.circuits.controlled.
    NonlinearVCCS`, sparse backends) degrade to per-sample
    :func:`solve_dc` calls wholesale.
    """
    options = options or NewtonOptions()
    circuits = list(circuits)
    if not circuits:
        raise SimulationError("solve_dc_batched requires at least one circuit")
    size = circuits[0].prepare()
    for circuit in circuits[1:]:
        circuit.prepare()
    resolved = resolve_backend(backend, size)
    S = len(circuits)

    def _seed(s: int) -> Optional[np.ndarray]:
        return None if x0 is None else np.asarray(x0[s], dtype=float)

    def _per_sample(indices) -> List[OperatingPoint]:
        return [
            solve_dc(
                circuits[s], options=options, x0=_seed(s), backend=backend
            )
            for s in indices
        ]

    nl_names: List[str] = []
    lockstep = resolved.is_dense
    if lockstep:
        try:
            _check_lockstep(circuits)
        except BatchIncompatible:
            lockstep = False
    if lockstep:
        nl_names = [
            name
            for name in circuits[0].component_names
            if circuits[0][name].is_nonlinear()
        ]
        if any(
            not isinstance(circuits[0][name], NonlinearVCCS)
            for name in nl_names
        ):
            lockstep = False
    if not lockstep:
        ops = _per_sample(range(S))
        return BatchedOperatingPoints(
            circuits,
            np.stack([op.x for op in ops]),
            np.array([op.iterations for op in ops], dtype=np.intp),
        )

    n_nodes = circuits[0].n_nodes
    nl_set = set(nl_names)
    lin_names = [
        name for name in circuits[0].component_names if name not in nl_set
    ]
    # The x-independent stamps: once per sample, not once per Newton
    # iteration.  The gmin diagonal is re-added per iteration *after*
    # the nonlinear stamps so the accumulation order tracks the
    # scalar path (components first, gmin last).
    G_lin = np.empty((S, size, size))
    rhs_lin = np.empty((S, size))
    x_probe = np.zeros(size)
    for s, circuit in enumerate(circuits):
        system = MNASystem(size)
        ctx = StampContext(system=system, x=x_probe, gmin=options.gmin)
        for name in lin_names:
            circuit[name].stamp(ctx)
        G_lin[s] = system.G
        rhs_lin[s] = system.rhs
    diag = np.arange(n_nodes)

    x = (
        np.array(x0, dtype=float, copy=True)
        if x0 is not None
        else np.zeros((S, size))
    )
    if x.shape != (S, size):
        raise SimulationError(
            f"x0 must have shape ({S}, {size}), got {x.shape}"
        )

    if not nl_names:
        G = G_lin.copy()
        G[:, diag, diag] += options.gmin
        solution = _bsolve_dc(G, rhs_lin)
        return BatchedOperatingPoints(
            circuits, solution, np.ones(S, dtype=np.intp)
        )

    # Per-device stacked linearization plans: vectorized across the
    # batch when every sample shares one characteristic family
    # (``vector_pair``), scalar per sample otherwise.
    plans = []
    for name in nl_names:
        devices = [circuit[name] for circuit in circuits]
        op_, on_, cp_, cn_ = devices[0]._n
        vp = devices[0].vector_pair
        if vp is not None and all(d.vector_pair is vp for d in devices):
            params = np.array([d.vector_params for d in devices])
            plans.append((op_, on_, cp_, cn_, vp, params, devices))
        else:
            plans.append((op_, on_, cp_, cn_, None, None, devices))

    iterations = np.zeros(S, dtype=np.intp)
    converged = np.zeros(S, dtype=bool)
    for it in range(options.max_iterations):
        idx = np.flatnonzero(~converged)
        if idx.size == 0:
            break
        G = G_lin[idx].copy()
        rhs = rhs_lin[idx].copy()
        xa = x[idx]
        for op_, on_, cp_, cn_, vp, params, devices in plans:
            v_ctrl = (xa[:, cp_] if cp_ >= 0 else 0.0) - (
                xa[:, cn_] if cn_ >= 0 else 0.0
            )
            if vp is not None:
                i_now, gm = vp(v_ctrl, *params[idx].T)
                gm = np.asarray(gm, dtype=float)
                i_eq = np.asarray(i_now, dtype=float) - gm * v_ctrl
            else:
                gm = np.empty(idx.size)
                i_eq = np.empty(idx.size)
                for k, s in enumerate(idx):
                    gm[k], i_eq[k] = devices[s].linearize(float(v_ctrl[k]))
            if op_ >= 0:
                if cp_ >= 0:
                    G[:, op_, cp_] += gm
                if cn_ >= 0:
                    G[:, op_, cn_] -= gm
                rhs[:, op_] -= i_eq
            if on_ >= 0:
                if cp_ >= 0:
                    G[:, on_, cp_] -= gm
                if cn_ >= 0:
                    G[:, on_, cn_] += gm
                rhs[:, on_] += i_eq
        G[:, diag, diag] += options.gmin
        x_new = _bsolve_dc(G, rhs)
        # Damping and convergence, vectorized but expression-for-
        # expression the scalar Newton's: scale by the largest node-
        # voltage move, compare against abstol + reltol * max|v|.
        delta = x_new - xa
        if n_nodes:
            max_delta = np.abs(delta[:, :n_nodes]).max(axis=1)
        else:
            max_delta = np.zeros(idx.size)
        over = max_delta > options.max_step
        if over.any():
            delta[over] *= (options.max_step / max_delta[over])[:, None]
            max_delta = np.minimum(max_delta, options.max_step)
        x[idx] = xa + delta
        tol = options.abstol_v + options.reltol * (
            np.abs(x[idx][:, :n_nodes]).max(axis=1)
            if n_nodes
            else np.zeros(idx.size)
        )
        done = max_delta < tol
        hit = idx[done]
        converged[hit] = True
        iterations[hit] = it + 1

    stuck = np.flatnonzero(~converged)
    if stuck.size:
        # The lockstep loop *is* the scalar plain-Newton attempt; a
        # sample that exhausted it gets the scalar continuation ladder
        # from its original seed, exactly as solve_dc would.
        for op_point, s in zip(_per_sample(stuck), stuck):
            x[s] = op_point.x
            iterations[s] = op_point.iterations
    return BatchedOperatingPoints(circuits, x, iterations)


class _SourceColumn:
    """One independent source, stacked across samples.

    Evaluates the per-sample stimulus values at a step time and
    scatters them into the stacked RHS.  When every sample shares the
    *same* value function object (common for fixed supplies), the
    stimulus is evaluated once and broadcast.
    """

    def __init__(self, components: List[object]):
        self.components = components
        first = components[0]
        self.is_voltage = isinstance(first, VoltageSource)
        if self.is_voltage:
            self.row = first._b[0]
        else:
            self.a, self.b = first._n[0], first._n[1]
        funcs = [c._func for c in components]
        self.shared = all(f is funcs[0] for f in funcs)
        #: Stacked values of a DC stimulus, hoisted out of the loop
        #: (``dc()`` annotates its functions with ``constant``).
        self.constant: Optional[np.ndarray] = None
        if all(hasattr(f, "constant") for f in funcs):
            self.constant = np.array([f.constant for f in funcs])

    def add_rhs(self, rhs: np.ndarray, time: float) -> None:
        if self.constant is not None:
            values: object = self.constant
        elif self.shared:
            values = self.components[0].value_at(time)
        else:
            values = np.array([c.value_at(time) for c in self.components])
        if self.is_voltage:
            rhs[:, self.row] += values
        else:
            if self.a >= 0:
                rhs[:, self.a] -= values
            if self.b >= 0:
                rhs[:, self.b] += values


class _DeviceColumn:
    """One :class:`NonlinearVCCS` position, stacked across samples.

    Linearizes the device at a vector of per-sample control voltages.
    When every sample's device declares the same batchable
    ``vector_pair`` family, one vectorized call covers the whole
    working set; otherwise a per-sample loop over ``linearize`` keeps
    arbitrary scalar characteristics correct (just slower).
    """

    def __init__(self, devices: List[NonlinearVCCS]):
        self.devices = devices
        first = devices[0]
        self.vectorized = first.vector_pair is not None and all(
            d.vector_pair == first.vector_pair
            and len(d.vector_params) == len(first.vector_params)
            for d in devices
        )
        if self.vectorized:
            self.family = first.vector_pair
            # One (S,) array per family parameter.
            self.params = tuple(
                np.array([d.vector_params[j] for d in devices])
                for j in range(len(first.vector_params))
            )

    def linearize(
        self, v_ctrl: np.ndarray, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(gm, i_eq)`` arrays for the sample subset ``rows``."""
        if self.vectorized:
            i_now, gm = self.family(v_ctrl, *(p[rows] for p in self.params))
            return np.asarray(gm, dtype=float), np.asarray(i_now - gm * v_ctrl)
        gm = np.empty(rows.size)
        ieq = np.empty(rows.size)
        for j, s in enumerate(rows):
            gm[j], ieq[j] = self.devices[s].linearize(float(v_ctrl[j]))
        return gm, ieq


class _StackedCoeffs:
    """Stacked multistep companion data for one ``(dt, method, order)``.

    ``gcol`` is the ``(S, m)`` stack of per-sample companion
    conductances/resistances; the spacing-dependent history weights
    are scalars shared by the whole lockstep batch (one shared time
    grid) and recomputed per step from the method.
    """

    __slots__ = ("gcol", "method", "dt", "order")

    def __init__(
        self, gcol: np.ndarray, method: IntegrationMethod, dt: float, order: int
    ):
        self.gcol = gcol
        self.method = method
        self.dt = dt
        self.order = order


class _BatchedDtEntry:
    """Everything cached for one quantized step size, stacked.

    Dense backend: ``G_base`` is the frozen ``(S, n, n)`` stack and
    ``inv`` its batched inverse.  Sparse backend: ``blocks`` holds the
    per-sample CSR matrices and ``lu`` one splu factorization of
    their block-diagonal — a single sparse solve advances the whole
    campaign, and its cost grows with ``S * nnz`` instead of
    ``S * n^2``.
    """

    __slots__ = (
        "dt",
        "G_base",
        "coeffs",
        "inv",
        "blocks",
        "lu",
        "rank1",
        "woodbury",
        "cond",
    )

    def __init__(self, dt: float, coeffs: tuple):
        self.dt = dt
        self.coeffs = coeffs  # (alpha[S,m], beta[S,m], upd_g[S,m], upd_m)
        self.G_base: Optional[np.ndarray] = None  # dense: (S, n, n), frozen
        self.inv: Optional[np.ndarray] = None  # dense: (S, n, n)
        self.blocks: Optional[list] = None  # sparse: S CSR matrices
        self.lu: Optional[BlockDiagLU] = None  # sparse: per-block splu
        self.rank1: Optional[tuple] = None  # lazy (w[S,n], vw[S], w_vmax[S])
        self.woodbury: Optional[tuple] = None  # lazy (WU[S,n,k], VWU[S,k,k])
        self.cond: Optional[np.ndarray] = None  # lazy (S,) condition estimates


class BatchedTransientAssembly:
    """Stacked linear system(s) for one lockstep transient run.

    The batched counterpart of :class:`~repro.circuits.assembly.
    TransientAssembly`: the same assembly tiers (static once per step
    size, RHS once per step, nonlinear devices once per Newton
    iteration), with every product carrying a leading sample axis and
    the ``dt``-keyed products living in a small LRU of per-step-size
    entries.
    """

    def __init__(
        self,
        circuits: Sequence[Circuit],
        dt: float,
        method: object,
        gmin: float,
        max_dt_entries: int = 8,
        backend: object = "auto",
    ):
        circuits = list(circuits)
        if not circuits:
            raise SimulationError("batched run needs at least one circuit")
        for circuit in circuits:
            circuit.prepare()
        _check_lockstep(circuits)
        self.circuits = circuits
        self.n_samples = len(circuits)
        self.method = resolve_method(method)
        self.method_name = self.method.name
        self._order = self.method.usable_order(self.method.max_order, 1)
        self.gmin = gmin
        self.size = circuits[0].size
        self.n_nodes = circuits[0].n_nodes
        # Auto selection keys on the *per-sample* unknown count, like
        # the per-sample engine: the dense stack costs O(S n^3) to
        # invert and O(S n^2) per solve, the block-diagonal CSR path
        # O(S nnz)-ish for both.
        self.backend = resolve_backend(backend, self.size)
        #: Shared static-stamp structure (identical across samples by
        #: the lockstep topology check), captured on first build.
        self._pattern: Optional[StampPattern] = None

        split0, full0 = circuits[0].partition_components()
        full_names = [c.name for c in full0]
        for name in full_names:
            if type(circuits[0][name]) is not NonlinearVCCS:
                raise BatchIncompatible(
                    f"component {name!r} ({type(circuits[0][name]).__name__}) "
                    "is outside the lockstep engine's stamp vocabulary"
                )
        self._split_names = [c.name for c in split0]

        # Vectorized reactive state: plain caps/inductors only (the
        # same restriction as the per-sample engine's fast path).
        caps0 = [c for c in split0 if type(c) is Capacitor]
        inds0 = [c for c in split0 if type(c) is Inductor]
        vectorized = set(c.name for c in caps0 + inds0)
        # Topology (gather indices, scatter matrix) is shared; only
        # the per-sample element values differ.  One _ReactiveSet per
        # sample keeps the companion-coefficient formulas in exactly
        # one place (_ReactiveSet.coeffs); _coeffs just stacks rows.
        self._reactive_names = [c.name for c in caps0 + inds0]
        self._sample_reactives = [
            _ReactiveSet(
                [circuit[c.name] for c in caps0],
                [circuit[c.name] for c in inds0],
                self.size,
            )
            for circuit in circuits
        ]
        self._topology = self._sample_reactives[0]
        self.n_caps = len(caps0)
        m = len(self._reactive_names)
        self.v = np.zeros((self.n_samples, m))
        self.i = np.zeros((self.n_samples, m))
        # Stacked multistep history ring (newest first), shared times:
        # the lockstep grid is one grid for every sample.  The ring
        # logic and weight memo are the per-sample engine's
        # :class:`~repro.circuits.assembly._HistoryRing`, just with
        # ``(S, m)`` state rows.
        self.ring = _HistoryRing((self.n_samples, m))
        if self.method.is_multistep:
            self.ring.enable(self.method.history_depth(self.method.max_order))
            self.ring.set_current(self.v, self.i, self.n_caps)
        # Single-slot companion-term memo (same policy as the
        # per-sample _ReactiveSet._cterm): step RHS and commit of one
        # candidate share the identical term.
        self._cterm: Optional[tuple] = None

        # Per-step RHS work: stacked source columns.  Anything else
        # with a dynamic stamp is outside the lockstep vocabulary.
        self.sources: List[_SourceColumn] = []
        for comp in split0:
            if comp.name in vectorized:
                continue
            if type(comp).stamp_dynamic is Component.stamp_dynamic:
                continue
            if not isinstance(comp, (VoltageSource, CurrentSource)):
                raise BatchIncompatible(
                    f"component {comp.name!r} has a dynamic stamp the "
                    "lockstep engine cannot vectorize"
                )
            self.sources.append(
                _SourceColumn([c[comp.name] for c in circuits])
            )

        # Nonlinear device columns + constant rank-k structure.
        self.devices: List[_DeviceColumn] = [
            _DeviceColumn([c[name] for c in circuits]) for name in full_names
        ]
        self.k = len(self.devices)
        if self.k:
            U = np.zeros((self.size, self.k))
            V = np.zeros((self.size, self.k))
            cp_idx = np.empty(self.k, dtype=np.intp)
            cn_idx = np.empty(self.k, dtype=np.intp)
            for j, name in enumerate(full_names):
                op, on, cp, cn = circuits[0][name]._n
                if op >= 0:
                    U[op, j] += 1.0
                if on >= 0:
                    U[on, j] -= 1.0
                if cp >= 0:
                    V[cp, j] += 1.0
                if cn >= 0:
                    V[cn, j] -= 1.0
                cp_idx[j], cn_idx[j] = cp, cn
            self.U, self.V = U, V
            self._cp_idx, self._cn_idx = cp_idx, cn_idx

        # Padded iterate buffer for ground-safe gathers on commit.
        self._xp = np.zeros((self.n_samples, self.size + 1))

        self.n_factorizations = 0
        #: Shared fill-reducing column ordering for the sparse blocks
        #: (False = not yet probed; None = probe failed, let each
        #: block's splu analyse itself).
        self._sparse_perm: object = False
        self._cache = DtCache(self._build_entry, max_entries=max_dt_entries)
        self._active: _BatchedDtEntry
        self.set_dt(dt)

    # -- dt-keyed cache -------------------------------------------------------

    def _build_entry(
        self, key: Tuple[float, IntegrationMethod, int]
    ) -> _BatchedDtEntry:
        dt, _method, order = key
        S, n = self.n_samples, self.size
        base_coeffs = self.method.base_coeffs(order)
        streams = []
        for circuit in self.circuits:
            tri = TripletSystem(n)
            ctx = StampContext(
                system=tri,
                x=np.zeros(n),
                time=0.0,
                dt=dt,
                method=self.method_name,
                gmin=self.gmin,
                coeffs=base_coeffs,
            )
            for name in self._split_names:
                circuit[name].stamp_static(ctx)
            for i in range(self.n_nodes):
                tri.add_G(i, i, self.gmin)
            streams.append(tri)
        if self._pattern is None or not self._pattern.matches(streams[0]):
            self._pattern = streams[0].pattern()
        pattern = self._pattern
        entry = _BatchedDtEntry(dt, self._coeffs(dt, order))
        # Factor eagerly (dense: batched inverse, sparse: one splu of
        # the block-diagonal): every strategy solves against this
        # entry on its first step anyway, and a singular sample then
        # surfaces as BatchIncompatible *here* — at construction for
        # the initial step size — rather than from inside the time
        # loop.
        if self.backend.is_dense:
            G = np.empty((S, n, n))
            for s, tri in enumerate(streams):
                G[s] = pattern.dense(tri.values())
            G.setflags(write=False)
            entry.G_base = G
            try:
                entry.inv = np.linalg.inv(G)
            except np.linalg.LinAlgError as exc:
                raise BatchIncompatible(
                    "singular base matrix in batch; the per-sample "
                    "engine's least-squares fallback is required"
                ) from exc
        elif isinstance(self.backend, KrylovBackend):
            entry.blocks = [
                self.backend.finalize(pattern, tri.values()) for tri in streams
            ]
            # Per-sample *stale* preconditioners, BlockDiagLU style:
            # the first entry factors every sample (symbolic-once
            # ordering shared); later entries ride each sample's stale
            # LU iteratively and refresh per sample only when its
            # iteration counts degrade.
            lu = self.backend.factor_blocks(entry.blocks)
            if lu.is_singular:
                raise BatchIncompatible(
                    "singular base matrix in batch; the per-sample "
                    "engine's least-squares fallback is required"
                )
            entry.lu = lu
        else:
            entry.blocks = [
                self.backend.finalize(pattern, tri.values()) for tri in streams
            ]
            # Symbolic-once: the fill-reducing ordering is structural,
            # so one probe covers every sample and every later dt
            # entry; only the numeric phase runs per block.
            if self._sparse_perm is False:
                self._sparse_perm = BlockDiagLU.column_ordering(
                    entry.blocks[0]
                )
            lu = BlockDiagLU(entry.blocks, perm_c=self._sparse_perm)
            if lu.is_singular:
                raise BatchIncompatible(
                    "singular base matrix in batch; the per-sample "
                    "engine's least-squares fallback is required"
                )
            entry.lu = lu
        self.n_factorizations += 1
        return entry

    def _coeffs(self, dt: float, order: int):
        """Stacked companion coefficients for one ``(dt, method, order)``.

        Each row is the per-sample :meth:`_ReactiveSet.coeffs` result
        — the companion formulas live only there.
        """
        rows = [
            reactive.coeffs(dt, self.method, order)
            for reactive in self._sample_reactives
        ]
        m = len(self._reactive_names)
        if self.method.is_multistep:
            gcol = np.stack([r.gcol for r in rows]) if m else np.zeros(
                (self.n_samples, 0)
            )
            return _StackedCoeffs(gcol, self.method, dt, order)
        alpha = np.stack([r.alpha for r in rows]) if m else np.zeros(
            (self.n_samples, 0)
        )
        beta = np.stack([r.beta for r in rows]) if m else np.zeros(
            (self.n_samples, 0)
        )
        upd_g = np.stack([r.upd_g for r in rows]) if m else np.zeros(
            (self.n_samples, 0)
        )
        return alpha, beta, upd_g, rows[0].upd_m

    def set_dt(
        self, dt: float, ephemeral: bool = False, order: Optional[int] = None
    ) -> None:
        """Make ``(dt, order)`` the active setup (the shared
        :class:`~repro.circuits.assembly.DtCache` policy, keyed by the
        full ``(dt, method, order)`` setup)."""
        if order is not None:
            self._order = int(order)
        # Method-object key, matching the per-sample assembly.
        key = (float(dt), self.method, self._order)
        self._active = self._cache.get(key, ephemeral=ephemeral)

    @property
    def order(self) -> int:
        """The active integration order."""
        return self._order

    @property
    def history_points(self) -> int:
        """Committed states available, including the current one."""
        return self.ring.points

    def history_times(self) -> tuple:
        return self.ring.times()

    def reset_history(self) -> None:
        """Invalidate multistep history (used across breakpoints)."""
        self.ring.reset()

    @property
    def dt(self) -> float:
        return self._active.dt

    @property
    def n_dt_entries(self) -> int:
        return len(self._cache)

    def inv(self) -> np.ndarray:
        """Batched inverse of the active base matrices (dense only).

        Mirrors the per-sample :class:`~repro.circuits.linsolve.
        ReusableLU` small-system strategy (explicit inverse, one
        LAPACK call for the whole stack); built eagerly with the
        entry, where a singular sample raises
        :class:`BatchIncompatible` — the per-sample path has the
        least-squares fallback such a netlist needs.
        """
        return self._active.inv

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Backend-agnostic base solve of a stacked ``(S, n)`` RHS.

        Dense: one batched mat-vec against the cached inverses.
        Sparse: one triangular solve against the block-diagonal splu —
        the stacked RHS *is* the block-diagonal system's RHS.
        """
        entry = self._active
        if entry.inv is not None:
            return _bsolve(entry.inv, rhs)
        return entry.lu.solve(rhs.reshape(-1)).reshape(rhs.shape)

    def solve_columns(self, U: np.ndarray) -> np.ndarray:
        """Base solve of shared ``(n, k)`` columns -> ``(S, n, k)``.

        Every sample shares the same rank-k injection columns ``U``
        (the lockstep topology check guarantees it), so the sparse
        path tiles them down the block diagonal and solves all
        samples' columns in one call.
        """
        entry = self._active
        if entry.inv is not None:
            return np.matmul(entry.inv, U)
        stacked = np.tile(U, (self.n_samples, 1))
        return entry.lu.solve(stacked).reshape(
            self.n_samples, self.size, U.shape[1]
        )

    def base_dense(self, s: int) -> np.ndarray:
        """Sample ``s``'s base matrix as a dense array (fallbacks only)."""
        entry = self._active
        if entry.G_base is not None:
            return entry.G_base[s]
        return entry.blocks[s].toarray()

    def condest_samples(self) -> Optional[np.ndarray]:
        """Per-sample 1-norm condition estimates of the active entry.

        Dense: exact ``||G||_1 * ||G^-1||_1`` from the cached batched
        inverse (one vectorized reduction, no new factorizations).
        Sparse: Hager estimation against the block-diagonal splu, one
        block per sample.  Cached on the entry; read-only.  Returns
        ``None`` when the active solver keeps no direct factorization
        to estimate against (the Krylov block solver's stale
        preconditioner may belong to a *different* matrix, so Hager
        estimation through it would certify the wrong operator).
        """
        entry = self._active
        if entry.cond is not None:
            return entry.cond
        if entry.inv is not None:
            norm_g = np.abs(entry.G_base).sum(axis=-2).max(axis=-1)
            norm_inv = np.abs(entry.inv).sum(axis=-2).max(axis=-1)
            cond = norm_g * norm_inv
        else:
            condest_blocks = getattr(entry.lu, "condest_blocks", None)
            if condest_blocks is None:
                return None
            cond = condest_blocks()
        entry.cond = np.asarray(cond, dtype=float)
        return entry.cond

    def residual_norms(
        self, x: np.ndarray, rhs_lin: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-sample residual data for post-step certification.

        Returns ``(res, norm_g, scale)``: the inf-norm residual of the
        full nonlinear system ``G_base x + U i_dev(x) - rhs_lin`` per
        sample, the inf-norm of each sample's base matrix, and the
        magnitude scale ``max(|G x|, |rhs|)`` the relative margin
        applies to.  Pure recomputation at the committed iterate.
        """
        entry = self._active
        if entry.G_base is not None:
            gx = np.matmul(entry.G_base, x[..., None])[..., 0]
            norm_g = np.abs(entry.G_base).sum(axis=-1).max(axis=-1)
        else:
            gx = np.stack(
                [entry.blocks[s].dot(x[s]) for s in range(self.n_samples)]
            )
            norm_g = np.array(
                [np.abs(b).sum(axis=1).max() for b in entry.blocks]
            )
        r = gx - rhs_lin
        if self.k:
            rows = np.arange(self.n_samples)
            v_ctrl = self.ctrl_project(x)
            i_now = np.empty((self.n_samples, self.k))
            for j, column in enumerate(self.devices):
                gm, ieq = column.linearize(v_ctrl[:, j], rows)
                i_now[:, j] = ieq + gm * v_ctrl[:, j]
            r = r + i_now @ self.U.T
        res = np.abs(r).max(axis=1) if r.size else np.zeros(self.n_samples)
        scale = np.maximum(
            np.abs(gx).max(axis=1) if gx.size else 0.0,
            np.abs(rhs_lin).max(axis=1) if rhs_lin.size else 0.0,
        )
        return res, norm_g, np.maximum(scale, 1e-30)

    # -- rank-k structure ------------------------------------------------------

    def ctrl_project(self, vec: np.ndarray) -> np.ndarray:
        """``V^T vec`` per sample: ``(S, size) -> (S, k)``."""
        cp, cn = self._cp_idx, self._cn_idx
        vp = np.where(cp >= 0, vec[:, np.maximum(cp, 0)], 0.0)
        vn = np.where(cn >= 0, vec[:, np.maximum(cn, 0)], 0.0)
        return vp - vn

    def rank1_data(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stacked Sherman–Morrison data ``(w[S,n], vw[S], w_vmax[S])``."""
        entry = self._active
        if entry.rank1 is None:
            w = self.solve_columns(self.U[:, :1])[..., 0]  # (S, n)
            vw = self.ctrl_project(w)[:, 0]
            w_v = w[:, : self.n_nodes]
            w_vmax = (
                np.abs(w_v).max(axis=1) if w_v.shape[1] else np.zeros(len(w))
            )
            entry.rank1 = (w, vw, w_vmax)
        return entry.rank1

    def woodbury_data(self) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked Woodbury data ``(WU[S,n,k], VWU[S,k,k])``."""
        entry = self._active
        if entry.woodbury is None:
            WU = self.solve_columns(self.U)  # (S, n, k)
            # VWU[s, j, l] = v_j^T W u_l, batched over samples.
            VWU = np.matmul(self.V.T[np.newaxis, :, :], WU)
            entry.woodbury = (WU, VWU)
        return entry.woodbury

    # -- state ----------------------------------------------------------------

    def init_state(self, x: np.ndarray) -> None:
        """Seed integrator state per sample (honours per-element ic)."""
        for s, circuit in enumerate(self.circuits):
            for j, name in enumerate(self._reactive_names):
                st = circuit[name].init_state(x[s])
                self.v[s, j], self.i[s, j] = st.v, st.i
        self.ring.restart()
        if self.ring.depth:
            self.ring.set_current(self.v, self.i, self.n_caps)
        self._cterm = None

    def snapshot_state(self) -> tuple:
        return self.v.copy(), self.i.copy(), self.ring.snapshot()

    def restore_state(self, snapshot: tuple) -> None:
        v, i, ring_snap = snapshot
        self.v = v.copy()
        self.i = i.copy()
        self.ring.restore(ring_snap)
        if self.ring.depth:
            self.ring.set_current(self.v, self.i, self.n_caps)

    def _val_now(self) -> np.ndarray:
        return self.ring.val_now(self.v, self.i, self.n_caps)

    def step_weights(self, co: _StackedCoeffs) -> tuple:
        """Memoized ``(wv, wd)`` — the shared :class:`_HistoryRing`
        relative-offset memo; weights are scalars shared by the whole
        lockstep batch (one shared time grid)."""
        return self.ring.step_weights(co)

    def _companion_term(self, co: _StackedCoeffs) -> np.ndarray:
        """Stacked ``(S, m)`` multistep companion term (cap ``ieq`` /
        inductor branch RHS); weights shared across the batch."""
        ring = self.ring
        memo = self._cterm
        if (
            memo is not None
            and memo[0] == co.dt
            and memo[1] == co.order
            and memo[2] == ring.t_now
            and memo[3] == ring.fill
        ):
            return memo[4]
        wv, wd = self.step_weights(co)
        term = ring.companion_term(wv, wd, co.gcol)
        self._cterm = (co.dt, co.order, ring.t_now, ring.fill, term)
        return term

    # -- once per step ---------------------------------------------------------

    def step_rhs(self, time: float) -> np.ndarray:
        """Stacked linear right-hand side for one step."""
        co = self._active.coeffs
        if self.v.shape[1]:
            if isinstance(co, _StackedCoeffs):
                term = self._companion_term(co)  # (S, m)
            else:
                alpha, beta, _upd_g, _upd_m = co
                term = alpha * self.v + beta * self.i  # (S, m)
            topo = self._topology
            if topo.scatter_csr is not None:
                rhs = np.ascontiguousarray(topo.scatter_csr.dot(term.T).T)
            else:
                rhs = term @ topo.scatter.T  # (S, n)
        else:
            rhs = np.zeros((self.n_samples, self.size))
        for source in self.sources:
            source.add_rhs(rhs, time)
        return rhs

    # -- after a converged step ------------------------------------------------

    def commit(
        self, x: np.ndarray, time: float, freeze: Optional[np.ndarray] = None
    ) -> None:
        """Advance every sample's integrator state after one step.

        ``freeze`` (boolean ``(S,)``) marks quarantined samples whose
        companion state must stay exactly where their last converged
        step left it: recomputing it from their frozen iterate rows
        through the companion formulas would drift it instead.
        """
        if not self.v.shape[1]:
            self.ring.t_now = time
            return
        co = self._active.coeffs
        topo = self._topology
        xp = self._xp
        xp[:, : self.size] = x
        v_new = xp[:, topo.a_idx] - xp[:, topo.b_idx]
        if isinstance(co, _StackedCoeffs):
            i_new = co.gcol * v_new + self._companion_term(co)
        else:
            _alpha, _beta, upd_g, upd_m = co
            i_new = upd_g * (v_new - self.v)
            if upd_m:
                i_new -= self.i
        if topo.br_idx.size:
            i_new[:, self.n_caps :] = x[:, topo.br_idx]
        if freeze is not None:
            v_new[freeze] = self.v[freeze]
            i_new[freeze] = self.i[freeze]
        self.ring.push()
        self.v = v_new
        self.i = i_new
        if self.ring.depth:
            self.ring.set_current(v_new, i_new, self.n_caps)
        self.ring.t_now = time


class _BatchedStepSolver:
    """Per-run lockstep Newton driver with a sample convergence mask.

    Two masks with different lifetimes: the per-iteration ``active``
    working set (converged samples drop out of a step's Newton loop)
    and the per-run ``quarantined`` mask — samples the engine has
    given up on.  Quarantined samples never enter another Newton
    working set, their iterate rows stay frozen at the last converged
    step, and their companion state is frozen on commit; the rest of
    the batch integrates on untouched.
    """

    def __init__(
        self,
        assembly: BatchedTransientAssembly,
        options: NewtonOptions,
        quarantine: bool = False,
        guards: bool = False,
        condition_limit: float = CONDITION_LIMIT,
        health: Optional[list] = None,
    ):
        self.assembly = assembly
        self.options = options
        self.n_nodes = assembly.n_nodes
        S = assembly.n_samples
        #: Per-sample Newton-solve counters (ragged convergence shows
        #: up here: converged samples stop accumulating).
        self.newton_per_sample = np.zeros(S, dtype=np.int64)
        self.quarantine_enabled = bool(quarantine)
        self.quarantined = np.zeros(S, dtype=bool)
        #: Per-step *skip* mask (envelope campaigns): samples masked
        #: here sit this step out exactly like quarantined ones —
        #: frozen iterate, frozen companion state — but the mask is
        #: re-evaluated every step, so a sample in a skipped envelope
        #: phase coexists in the stack with carrier-resolved
        #: neighbours and resumes when its mask clears.
        self.skipped = np.zeros(S, dtype=bool)
        self.skipped_steps = np.zeros(S, dtype=np.int64)
        #: One record per quarantined sample: sample index, the time
        #: the sample died, and why.
        self.quarantine_records: List[Dict[str, object]] = []
        self.guards = bool(guards)
        self.condition_limit = condition_limit
        self.health = health if health is not None else []
        self._cond_checked: set = set()
        self._condest_skip_noted = False
        if assembly.k == 0:
            self.strategy = "batched-linear"
        elif assembly.k == 1:
            self.strategy = "batched-rank1"
            self._cp = int(assembly._cp_idx[0])
            self._cn = int(assembly._cn_idx[0])
        else:
            self.strategy = "batched-woodbury"

    @property
    def frozen(self) -> np.ndarray:
        """Samples sitting this step out (quarantined or skipped)."""
        if not self.skipped.any():
            return self.quarantined
        return self.quarantined | self.skipped

    def set_skipped(self, mask: Optional[np.ndarray]) -> None:
        """Install this step's skip mask (``None`` clears it)."""
        if mask is None:
            self.skipped[:] = False
            return
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.skipped.shape:
            raise SimulationError(
                f"skip mask shape {mask.shape} != ({len(self.skipped)},)"
            )
        np.copyto(self.skipped, mask)

    def _ctrl1(self, vec: np.ndarray) -> np.ndarray:
        """k=1 control projection ``(S, size) -> (S,)`` without the
        generic gather machinery (this sits in the hot loop)."""
        cp, cn = self._cp, self._cn
        if cp >= 0 and cn >= 0:
            return vec[:, cp] - vec[:, cn]
        if cp >= 0:
            return vec[:, cp].copy()
        if cn >= 0:
            return -vec[:, cn]
        return np.zeros(len(vec))

    # -- shared helpers -------------------------------------------------------

    def _tol(self, x: np.ndarray) -> np.ndarray:
        """Per-sample convergence tolerance from the node voltages."""
        options = self.options
        if self.n_nodes == 0:
            return np.full(len(x), options.abstol_v)
        return options.abstol_v + options.reltol * np.abs(
            x[:, : self.n_nodes]
        ).max(axis=1)

    def _fail(self, time: float, active: np.ndarray) -> ConvergenceError:
        rows = np.nonzero(active)[0]
        # failed_samples names the still-unconverged samples: the
        # quarantine loops mask exactly these out, and the campaign
        # layer uses them to attribute a collective lockstep failure.
        return ConvergenceError(
            f"batched transient Newton failed at t={time:.4e} for "
            f"sample(s) {rows.tolist()}",
            iterations=self.options.max_iterations,
            time=time,
            dt=self.assembly.dt,
            phase="step",
            failed_samples=rows.tolist(),
        )

    def _fail_health(self, time: float, rows: np.ndarray, why: str) -> ConvergenceError:
        """A health-guard failure for specific samples.

        ``phase="health"`` routes it through the same quarantine loops
        as a Newton failure, but with the ``"health"`` reason and —
        in the adaptive loop — without pointless dt shrinking (the
        same NaN reappears at any step size).
        """
        rows = [int(s) for s in rows]
        return ConvergenceError(
            f"{why} at t={time:.4e} for sample(s) {rows}",
            time=time,
            dt=self.assembly.dt,
            phase="health",
            failed_samples=rows,
        )

    def _guard_conditioning(self, time: float) -> None:
        """One-time per-dt-entry condition screen of the batch.

        Ill-conditioned samples get a warning
        :class:`~repro.circuits.health.HealthReport`; when quarantine
        is enabled they are additionally masked out of the batch via a
        health-phase failure (their waveforms would be numerically
        meaningless).
        """
        entry = self.assembly._active
        key = id(entry)
        if key in self._cond_checked:
            return
        self._cond_checked.add(key)
        cond = self.assembly.condest_samples()
        if cond is None:
            if not self._condest_skip_noted:
                self._condest_skip_noted = True
                self.health.append(
                    HealthReport(
                        "condest_skipped",
                        "condition estimation skipped: the active "
                        "solver keeps no direct factorization of the "
                        "stepping matrices; NaN/Inf screening stays "
                        "armed",
                        severity="info",
                        time=time,
                    )
                )
            return
        bad = (~np.isfinite(cond) | (cond > self.condition_limit)) & (
            ~self.quarantined
        )
        rows = np.flatnonzero(bad)
        if rows.size == 0:
            return
        for s in rows:
            self.health.append(
                HealthReport(
                    "ill_conditioned",
                    f"sample {int(s)} condition estimate {cond[s]:.3e} "
                    f"exceeds limit {self.condition_limit:.1e} at "
                    f"t={time:.4e}",
                    severity="warning",
                    time=time,
                    sample=int(s),
                    value=float(cond[s]),
                )
            )
        if self.quarantine_enabled:
            raise self._fail_health(time, rows, "ill-conditioned factorization")

    def quarantine(self, rows, time: float, reason: str) -> None:
        """Mask samples out of the batch; record what died and why."""
        for s in rows:
            s = int(s)
            if not self.quarantined[s]:
                self.quarantined[s] = True
                self.quarantine_records.append(
                    {"sample": s, "time": float(time), "reason": reason}
                )

    def _injected(self, time: float) -> Optional[np.ndarray]:
        """Fault-injection mask from the test-only fail hook."""
        hook = self.options.fail_hook
        if hook is None:
            return None
        circuits = self.assembly.circuits
        inject = np.array(
            [
                not self.quarantined[s] and bool(hook(time, "step", circuits[s]))
                for s in range(self.assembly.n_samples)
            ],
            dtype=bool,
        )
        return inject if inject.any() else None

    def _dense_fallback(
        self,
        s: int,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        gms: np.ndarray,
        ieqs: np.ndarray,
    ) -> Tuple[np.ndarray, float]:
        """One damped dense Newton step for a single stuck sample.

        Mirrors the per-sample engine's singular-denominator escape:
        assemble the full Jacobian for this sample at its current
        linearization and take one damped dense-solve step.
        """
        asm = self.assembly
        G = asm.base_dense(s) + asm.U @ (gms[:, None] * asm.V.T)
        rhs = rhs_lin[s] - asm.U @ ieqs
        x_new = solve_dense(G, rhs)
        delta = x_new - x[s]
        v_delta = delta[: self.n_nodes]
        max_delta = float(np.abs(v_delta).max()) if v_delta.size else 0.0
        if max_delta > self.options.max_step:
            delta = delta * (self.options.max_step / max_delta)
            max_delta = self.options.max_step
        return x[s] + delta, max_delta

    # -- one lockstep time step ------------------------------------------------

    def step(self, x: np.ndarray, rhs_lin: np.ndarray, time: float) -> np.ndarray:
        inject = self._injected(time)
        if inject is not None:
            raise self._fail(time, inject)
        if self.guards:
            self._guard_conditioning(time)
            # Screen the stimulus before burning Newton iterations on
            # samples whose RHS is already poisoned.
            rows = nonfinite_sample_rows(rhs_lin, eligible=~self.frozen)
            if rows.size:
                self._record_nonfinite(rows, time, "non-finite step RHS")
                raise self._fail_health(time, rows, "non-finite step RHS")
        if self.strategy == "batched-linear":
            x_new = self.assembly.solve(rhs_lin)
            frozen = self.frozen
            if frozen.any():
                x_new[frozen] = x[frozen]
        elif self.strategy == "batched-rank1":
            x_new = self._step_rank1(x, rhs_lin, time)
        else:
            x_new = self._step_woodbury(x, rhs_lin, time)
        if self.guards:
            rows = nonfinite_sample_rows(x_new, eligible=~self.frozen)
            if rows.size:
                self._record_nonfinite(rows, time, "non-finite step solution")
                raise self._fail_health(time, rows, "non-finite step solution")
        return x_new

    def _record_nonfinite(self, rows: np.ndarray, time: float, why: str) -> None:
        for s in rows:
            self.health.append(
                HealthReport(
                    "nonfinite",
                    f"{why} for sample {int(s)} at t={time:.4e}",
                    time=time,
                    sample=int(s),
                )
            )

    def _step_rank1(
        self, x: np.ndarray, rhs_lin: np.ndarray, time: float
    ) -> np.ndarray:
        """Vectorized mirror of the per-sample Sherman–Morrison step.

        Every sample runs exactly the scalarized iteration of
        ``_StepSolver._step_rank1`` — same on-the-line shortcut, same
        damping rule, same convergence estimate (``|c - q| * w_vmax``
        is the exact node-voltage delta on the line) — just stacked,
        with converged samples leaving the working set.
        """
        asm = self.assembly
        options = self.options
        device = asm.devices[0]
        w, vw, w_vmax = asm.rank1_data()
        n = self.n_nodes
        max_step = options.max_step
        S = asm.n_samples
        z_lin = asm.solve(rhs_lin)
        zl_c = self._ctrl1(z_lin)
        x = x.copy()
        tol = self._tol(x)
        v_ctrl = self._ctrl1(x)
        on_line = np.zeros(S, dtype=bool)
        c = np.zeros(S)
        # Quarantined and skipped samples never enter the working set:
        # their rows of ``x`` stay frozen at the last converged iterate.
        active = ~self.frozen
        for _iteration in range(options.max_iterations):
            rows = np.nonzero(active)[0]
            if rows.size == 0:
                return x
            gm, ieq = device.linearize(v_ctrl[rows], rows)
            self.newton_per_sample[rows] += 1
            denom = 1.0 + gm * vw[rows]
            bad = np.abs(denom) < 1e-12
            if bad.any():
                # Jacobian momentarily singular along the rank-1
                # direction for these samples: dense fallback step.
                for j in np.nonzero(bad)[0]:
                    s = rows[j]
                    if on_line[s]:
                        x[s] = z_lin[s] - c[s] * w[s]
                        on_line[s] = False
                    x[s], last = self._dense_fallback(
                        s, x, rhs_lin, np.array([gm[j]]), np.array([ieq[j]])
                    )
                    v_ctrl[s] = asm.ctrl_project(x[s : s + 1])[0, 0]
                    if last < tol[s]:
                        active[s] = False
                keep = ~bad
                rows, gm, ieq, denom = rows[keep], gm[keep], ieq[keep], denom[keep]
                if rows.size == 0:
                    continue
            q = ieq + gm * (zl_c[rows] - ieq * vw[rows]) / denom

            mask_on = on_line[rows]
            # -- samples already on the z_lin - c*w line: scalar update.
            ro, qo = rows[mask_on], q[mask_on]
            if ro.size:
                last = np.abs(c[ro] - qo) * w_vmax[ro]
                damped = last > max_step
                if damped.any():
                    scale = np.where(
                        damped, max_step / np.where(damped, last, 1.0), 1.0
                    )
                    c[ro] = np.where(damped, c[ro] + scale * (qo - c[ro]), qo)
                    last = np.where(damped, max_step, last)
                else:
                    c[ro] = qo
                v_ctrl[ro] = zl_c[ro] - c[ro] * vw[ro]
                conv = last < tol[ro]
                done = ro[conv]
                if done.size:
                    x[done] = z_lin[done] - c[done, None] * w[done]
                    active[done] = False
            # -- samples still off the line: full-vector damped update.
            rf, qf = rows[~mask_on], q[~mask_on]
            if rf.size:
                x_new = z_lin[rf] - qf[:, None] * w[rf]
                delta = x_new - x[rf]
                v_delta = np.abs(delta[:, :n])
                maxd = v_delta.max(axis=1) if n else np.zeros(rf.size)
                hit = maxd >= max_step  # damped (or exactly at the cap):
                # stays off the line, like the per-sample branch.
                if hit.any():
                    scale = np.where(
                        maxd > max_step,
                        max_step / np.where(maxd > 0, maxd, 1.0),
                        1.0,
                    )
                    x[rf] = np.where(
                        hit[:, None], x[rf] + delta * scale[:, None], x_new
                    )
                    maxd = np.minimum(maxd, max_step)
                    landed = ~hit
                    lr = rf[landed]
                    on_line[lr] = True
                    c[lr] = qf[landed]
                    v_ctrl[rf] = np.where(
                        hit,
                        self._ctrl1(x[rf]),
                        zl_c[rf] - qf * vw[rf],
                    )
                else:
                    x[rf] = x_new
                    on_line[rf] = True
                    c[rf] = qf
                    v_ctrl[rf] = zl_c[rf] - qf * vw[rf]
                conv = maxd < tol[rf]
                active[rf[conv]] = False
        if active.any():
            raise self._fail(time, active)
        return x

    def _step_woodbury(
        self, x: np.ndarray, rhs_lin: np.ndarray, time: float
    ) -> np.ndarray:
        """Vectorized mirror of the per-sample Woodbury Newton step."""
        asm = self.assembly
        options = self.options
        k = asm.k
        n = self.n_nodes
        eye_k = np.eye(k)
        WU, VWU = asm.woodbury_data()
        z_lin = asm.solve(rhs_lin)
        x = x.copy()
        v_ctrl = asm.ctrl_project(x)
        active = ~self.frozen
        for _iteration in range(options.max_iterations):
            rows = np.nonzero(active)[0]
            if rows.size == 0:
                return x
            gms = np.empty((rows.size, k))
            ieqs = np.empty((rows.size, k))
            for j, column in enumerate(asm.devices):
                gms[:, j], ieqs[:, j] = column.linearize(v_ctrl[rows, j], rows)
            self.newton_per_sample[rows] += 1
            Wb = z_lin[rows] - np.matmul(WU[rows], ieqs[..., None])[..., 0]
            VWb = asm.ctrl_project(Wb)
            M = eye_k + VWU[rows] * gms[:, None, :]
            try:
                s_sol = np.linalg.solve(M, VWb[..., None])[..., 0]
                x_new = Wb - np.matmul(WU[rows], (gms * s_sol)[..., None])[..., 0]
            except np.linalg.LinAlgError:
                # A sample's small matrix is singular along the rank-k
                # directions: dense fallback per affected sample, the
                # rest proceed through the same dense path this
                # iteration (matches the per-sample engine, which also
                # falls back for the whole iterate).
                x_new = np.empty_like(Wb)
                for j, s in enumerate(rows):
                    try:
                        sj = np.linalg.solve(M[j], VWb[j])
                        x_new[j] = Wb[j] - WU[s] @ (gms[j] * sj)
                    except np.linalg.LinAlgError:
                        G = asm.base_dense(s) + asm.U @ (
                            gms[j][:, None] * asm.V.T
                        )
                        x_new[j] = solve_dense(G, rhs_lin[s] - asm.U @ ieqs[j])
            delta = x_new - x[rows]
            v_delta = np.abs(delta[:, :n])
            maxd = v_delta.max(axis=1) if n else np.zeros(rows.size)
            over = maxd > options.max_step
            scale = np.where(over, options.max_step / np.where(over, maxd, 1.0), 1.0)
            x[rows] += delta * scale[:, None]
            maxd = np.minimum(maxd, options.max_step)
            v_ctrl[rows] = asm.ctrl_project(x[rows])
            conv = maxd < self._tol(x[rows])
            active[rows[conv]] = False
        if active.any():
            raise self._fail(time, active)
        return x


class _BatchedCertifier:
    """Post-step certification, S samples wide.

    The lockstep counterpart of the per-sample engine's certifier:
    every accepted step's full nonlinear residual is recomputed at the
    committed iterate (base matrix product plus device currents) and
    checked per sample against the same Newton-tolerance-derived
    threshold.  Quarantined samples are exempt — their rows are
    frozen, not solved.  Pure recomputation; never mutates the run.
    """

    def __init__(
        self,
        assembly: BatchedTransientAssembly,
        options: TransientOptions,
        health: list,
    ):
        self.assembly = assembly
        self.newton = options.newton
        self.rtol = options.certify_rtol
        self.health = health
        self.checked = 0

    def check_step(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        eligible: Optional[np.ndarray] = None,
    ) -> None:
        self.checked += 1
        asm = self.assembly
        res, norm_g, scale = asm.residual_norms(x, rhs_lin)
        n = asm.n_nodes
        if n:
            v_max = np.abs(x[:, :n]).max(axis=1)
        else:
            v_max = np.zeros(len(x))
        tol_v = self.newton.abstol_v + self.newton.reltol * v_max
        threshold = 10.0 * norm_g * tol_v + self.rtol * scale
        bad = ~np.isfinite(res) | (res > threshold)
        if eligible is not None:
            bad &= eligible
        for s in np.flatnonzero(bad):
            self.health.append(
                HealthReport(
                    "residual",
                    f"sample {int(s)} accepted-step residual "
                    f"{res[s]:.3e} exceeds the certification threshold "
                    f"{threshold[s]:.3e} at t={time:.4e}",
                    time=time,
                    sample=int(s),
                    value=float(res[s]),
                )
            )

    def check_grid(self, times: np.ndarray, options: TransientOptions) -> None:
        check_grid_invariants(times, options.t_stop, self.health)


class _BatchedRecording:
    """Growable stacked ``(t, x[S])`` recording buffer."""

    def __init__(
        self,
        n_samples: int,
        n_columns: int,
        capacity: int,
        record_indices: Optional[np.ndarray],
    ):
        capacity = max(int(capacity), 4)
        self._t = np.empty(capacity)
        self._x = np.empty((capacity, n_samples, n_columns))
        self._indices = record_indices
        self._n = 0

    def append(self, time: float, x: np.ndarray) -> None:
        if self._n == self._t.size:
            self._t = np.concatenate([self._t, np.empty(self._t.size)])
            grown = np.empty((self._t.size,) + self._x.shape[1:])
            grown[: self._n] = self._x
            self._x = grown
        self._t[self._n] = time
        self._x[self._n] = x if self._indices is None else x[:, self._indices]
        self._n += 1

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._t[: self._n].copy(), self._x[: self._n]


def run_transient_batched(
    circuits: Sequence[Circuit],
    options: Optional[TransientOptions] = None,
    skip_mask=None,
) -> List[TransientResult]:
    """Integrate S same-topology circuits in one lockstep time loop.

    Returns one :class:`~repro.circuits.transient.TransientResult` per
    input circuit, in order, equivalent to running
    :func:`~repro.circuits.transient.run_transient` per sample (the
    equivalence tests pin this at rtol 1e-9 for the strategies the
    lockstep engine covers).  ``step_control="adaptive"`` integrates
    every sample on one shared grid sized by the worst sample's LTE.

    Raises :class:`BatchIncompatible` when the netlists cannot be
    stacked: differing topology, nonlinear devices other than
    :class:`~repro.circuits.controlled.NonlinearVCCS`, a non-``"auto"``
    Jacobian mode, components outside the stamp split's vectorizable
    vocabulary, or a singular stacked base matrix (see the exception's
    docstring for when each case fires).

    Fault tolerance mirrors the per-sample engine's options:
    ``options.quarantine`` masks a sample whose Newton fails (fixed
    grid: on any step; adaptive: at the dt floor, or on LTE underflow)
    out of the lockstep batch — its iterate and companion state freeze
    at the last converged step, its stats gain ``quarantined=True``
    and a ``quarantine`` record, and the survivors finish.
    ``max_steps`` / ``max_wall_time`` budgets and ``on_abort``
    ("raise" vs "partial") behave exactly as in
    :func:`~repro.circuits.transient.run_transient`; an all-samples
    quarantine aborts with reason ``"all_quarantined"``.

    ``skip_mask(time) -> (S,) bool array or None`` is the per-sample
    envelope skip hook: samples masked at a step keep their iterate
    and companion state frozen for that step (exactly the quarantine
    freeze, but re-evaluated every step), so samples in skipped
    envelope phases coexist in one stack with carrier-resolved
    neighbours.  Per-sample ``stats["skipped_steps"]`` counts the
    steps each sample sat out.
    """
    options = options or TransientOptions()
    if options.jacobian != "auto":
        raise BatchIncompatible(
            f"jacobian={options.jacobian!r} has no lockstep equivalent"
        )
    # Lockstep batches share one topology; linting the first sample
    # covers the structural findings for all of them.  Empty batches
    # fall through to the assembly's own BatchIncompatible.
    preflight_diags = (
        apply_preflight(circuits[0], options.preflight, options, analysis="tran")
        if circuits
        else []
    )
    assembly = BatchedTransientAssembly(
        circuits,
        options.dt,
        options.resolved_method(),
        options.newton.gmin,
        max_dt_entries=options.dt_cache_size,
        backend=options.backend,
    )
    circuits = assembly.circuits
    S = assembly.n_samples
    size = assembly.size

    if options.use_dc_operating_point:
        x = solve_dc_batched(
            circuits, options=options.newton, backend=options.backend
        ).x
    else:
        x = np.zeros((S, size))
    assembly.init_state(x)

    health: List[HealthReport] = []
    solver = _BatchedStepSolver(
        assembly,
        options.newton,
        quarantine=options.quarantine,
        guards=options.guards,
        condition_limit=options.condition_limit,
        health=health,
    )
    certifier = (
        _BatchedCertifier(assembly, options, health)
        if options.certify
        else None
    )

    record_indices, recorded_nodes, n_columns = _resolve_recording(
        circuits[0], options
    )
    if options.step_control == "fixed":
        capacity = _fixed_record_count(options)
    else:
        capacity = int(options.t_stop / options.dt) // options.record_stride + 2
    recorder = _BatchedRecording(S, n_columns, capacity, record_indices)

    try:
        if options.step_control == "fixed":
            run_stats = _run_fixed_lockstep(
                options, assembly, solver, x, recorder, certifier, skip_mask
            )
        else:
            run_stats = _run_adaptive_lockstep(
                circuits,
                options,
                assembly,
                solver,
                x,
                recorder,
                certifier,
                skip_mask,
            )
    except _RunAbort as abort:
        if options.on_abort == "raise":
            if abort.error is not None:
                raise abort.error
            raise SimulationError(
                f"batched transient aborted: {abort.reason} budget "
                f"exhausted at t={abort.stats.get('t_abort', 0.0):.4e}"
            )
        run_stats = dict(abort.stats)
        run_stats["abort_reason"] = abort.reason
        run_stats["completed"] = False
        if abort.error is not None:
            run_stats["abort_error"] = str(abort.error)

    quarantine_by_sample: Dict[int, Dict[str, object]] = {}
    if solver.quarantine_enabled:
        run_stats["quarantined_samples"] = np.nonzero(solver.quarantined)[
            0
        ].tolist()
        quarantine_by_sample = {
            int(record["sample"]): record for record in solver.quarantine_records
        }

    times, records = recorder.arrays()
    if certifier is not None:
        certifier.check_grid(times, options)
    results: List[TransientResult] = []
    for s, circuit in enumerate(circuits):
        stats: Dict[str, object] = {
            "strategy": solver.strategy,
            "backend": assembly.backend.name,
            "step_control": options.step_control,
            "newton_iterations": int(solver.newton_per_sample[s]),
            "lu_refactorizations": assembly.n_factorizations,
            "batch_samples": S,
        }
        if skip_mask is not None:
            stats["skipped_steps"] = int(solver.skipped_steps[s])
        stats.update(run_stats)
        if solver.quarantine_enabled:
            stats["quarantined"] = bool(solver.quarantined[s])
            if s in quarantine_by_sample:
                stats["quarantine"] = quarantine_by_sample[s]
        if options.guards or options.certify:
            stats["health"] = [
                r for r in health if r.sample in (None, s)
            ]
            if certifier is not None:
                stats["certified_steps"] = certifier.checked
        if options.preflight != "off":
            stats["preflight"] = preflight_diags
        results.append(
            TransientResult(
                circuit=circuit,
                t=times,
                x=records[:, s, :].copy(),
                recorded_nodes=recorded_nodes,
                stats=stats,
            )
        )
    return results


def probe_stiffness_ratios(
    circuits: Sequence[Circuit],
    options: Optional[TransientOptions] = None,
) -> Optional[np.ndarray]:
    """Rank samples by stiffness: per-sample probe-step LTE ratios.

    A lockstep probe — a full step of ``options.dt`` and the same
    step as two halves, both from the DC operating point — yields each
    sample's Richardson LTE estimate over tolerance
    (:meth:`~repro.circuits.stepcontrol.StepController.
    error_ratio_samples`).  A large ratio means the sample needs a
    small step to hold tolerance: it is *stiff* relative to its batch
    peers.  When the stimuli declare breakpoints (pulse/pwl sources),
    a second probe runs just past the *earliest* breakpoint and the
    rankings combine by elementwise max: a pulse-driven netlist is
    electrically inert at t=0, so a first-step-only probe would rank
    every sample identically and the clustering would be noise.  The
    sharded campaign layer feeds this ranking to
    :func:`~repro.circuits.stepcontrol.stiffness_bins` so sub-batches
    group samples of similar stiffness.

    The probe is advisory: any failure — netlists the lockstep engine
    cannot stack, a diverging DC or probe Newton solve — returns
    ``None`` and the caller proceeds unclustered.  Probe state is
    thrown away; the actual campaign re-runs from its own DC seed.
    """
    options = options or TransientOptions()
    if options.jacobian != "auto":
        return None
    try:
        assembly = BatchedTransientAssembly(
            circuits,
            options.dt,
            options.resolved_method(),
            options.newton.gmin,
            max_dt_entries=options.dt_cache_size,
            backend=options.backend,
        )
        S = assembly.n_samples
        if options.use_dc_operating_point:
            x = solve_dc_batched(
                assembly.circuits, options=options.newton, backend=options.backend
            ).x
        else:
            x = np.zeros((S, assembly.size))
        assembly.init_state(x)
        solver = _BatchedStepSolver(assembly, options.newton, quarantine=False)
        method = assembly.method
        controller = StepController(
            t_stop=options.t_stop,
            dt_initial=options.dt,
            dt_min=options.resolved_dt_min(),
            dt_max=options.resolved_dt_max(),
            method=method,
            reltol=options.lte_reltol,
            abstol=options.lte_abstol,
            safety=options.lte_safety,
            max_growth=options.max_step_growth,
        )
        dt = options.dt
        half = 0.5 * dt
        order = (
            controller.candidate_order(assembly.history_points)
            if method.is_multistep
            else None
        )

        def probe_at(t0: float) -> np.ndarray:
            """One full/half Richardson probe starting at ``t0``.

            Companion state is snapshotted and restored so probes are
            independent; every probe steps from the same DC iterate.
            """
            snapshot = assembly.snapshot_state()
            try:
                assembly.set_dt(dt, order=order)
                x_full = solver.step(x, assembly.step_rhs(t0 + dt), t0 + dt)
                assembly.set_dt(half, ephemeral=True, order=order)
                x_mid = solver.step(x, assembly.step_rhs(t0 + half), t0 + half)
                assembly.commit(x_mid, t0 + half)
                x_half = solver.step(
                    x_mid, assembly.step_rhs(t0 + dt), t0 + dt
                )
            finally:
                assembly.restore_state(snapshot)
            return controller.error_ratio_samples(
                x_full, x_half, assembly.n_nodes
            )

        ratios = probe_at(0.0)
        bp: set = set()
        for circuit in circuits:
            bp.update(collect_breakpoints(circuit, options.t_stop))
        inside = sorted(t for t in bp if t + dt <= options.t_stop)
        if inside:
            ratios = np.maximum(ratios, probe_at(inside[0]))
    except (BatchIncompatible, ConvergenceError, SimulationError):
        return None
    return ratios


def _run_fixed_lockstep(
    options: TransientOptions,
    assembly: BatchedTransientAssembly,
    solver: _BatchedStepSolver,
    x: np.ndarray,
    recorder: _BatchedRecording,
    certifier: Optional[_BatchedCertifier] = None,
    skip_mask=None,
) -> Dict[str, object]:
    """The classic uniform grid, S samples wide.

    With ``options.quarantine`` a sample whose Newton fails is masked
    out of the batch (iterate and companion state frozen) and the step
    is retried with the survivors; the loop only aborts when every
    sample is dead.  Budgets charge once per grid step.

    ``skip_mask(time) -> (S,) bool`` (or ``None``) marks samples that
    sit this step out with frozen state — the per-sample envelope
    skip: samples in skipped phases coexist with resolved neighbours.
    """
    n_steps = int(round(options.t_stop / options.dt))
    stride = options.record_stride
    recorder.append(0.0, x)
    method = assembly.method
    multistep = method.is_multistep
    order_histogram: Dict[int, int] = {}
    budget = _RunBudget.for_options(options)

    def partial_stats(step: int) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "steps": step - 1,
            "t_abort": (step - 1) * options.dt,
        }
        if multistep:
            stats["order_histogram"] = order_histogram
        return stats

    for step in range(1, n_steps + 1):
        time = step * options.dt
        if budget is not None:
            exhausted = budget.charge()
            if exhausted is not None:
                raise _RunAbort(exhausted, stats=partial_stats(step))
        if skip_mask is not None:
            solver.set_skipped(skip_mask(time))
            solver.skipped_steps[solver.skipped] += 1
        if multistep:
            # Gear startup ramp: the whole batch shares one order
            # schedule, clamped by the shared committed history.
            order = method.usable_order(
                method.max_order, assembly.history_points
            )
            if order != assembly.order:
                assembly.set_dt(options.dt, order=order)
            order_histogram[order] = order_histogram.get(order, 0) + 1
        rhs_lin = assembly.step_rhs(time)
        while True:
            try:
                x = solver.step(x, rhs_lin, time)
                break
            except ConvergenceError as exc:
                failed = getattr(exc, "failed_samples", None)
                health_failure = getattr(exc, "phase", None) == "health"
                if not solver.quarantine_enabled or not failed:
                    if health_failure:
                        raise _RunAbort(
                            "health", error=exc, stats=partial_stats(step)
                        )
                    raise
                solver.quarantine(
                    failed, time, "health" if health_failure else "newton"
                )
                if solver.quarantined.all():
                    raise _RunAbort(
                        "all_quarantined", error=exc, stats=partial_stats(step)
                    )
                # Retry the same step with the survivors only.
        frozen = solver.frozen
        freeze = frozen if frozen.any() else None
        if certifier is not None:
            certifier.check_step(
                x, rhs_lin, time, eligible=None if freeze is None else ~freeze
            )
        assembly.commit(x, time, freeze=freeze)
        if step % stride == 0:
            recorder.append(time, x)
    stats: Dict[str, object] = {"steps": n_steps}
    if multistep:
        stats["order_histogram"] = order_histogram
    return stats


def _run_adaptive_lockstep(
    circuits: Sequence[Circuit],
    options: TransientOptions,
    assembly: BatchedTransientAssembly,
    solver: _BatchedStepSolver,
    x: np.ndarray,
    recorder: _BatchedRecording,
    certifier: Optional[_BatchedCertifier] = None,
    skip_mask=None,
) -> Dict[str, object]:
    """Worst-sample LTE control on one shared adaptive grid.

    The step-doubling structure matches the per-sample adaptive loop;
    the acceptance test is :meth:`StepController.error_ratio_many` —
    a candidate step commits only when *every* sample's Richardson
    estimate meets tolerance, so the shared grid is as fine as the
    most demanding sample requires.  Breakpoints are the union of all
    samples' stimulus discontinuities.
    """
    breakpoints = sorted(
        set(
            t
            for circuit in circuits
            for t in collect_breakpoints(
                circuit, options.t_stop, options.breakpoints or ()
            )
        )
    )
    method = assembly.method
    controller = StepController(
        t_stop=options.t_stop,
        dt_initial=options.dt,
        dt_min=options.resolved_dt_min(),
        dt_max=options.resolved_dt_max(),
        method=method,
        reltol=options.lte_reltol,
        abstol=options.lte_abstol,
        safety=options.lte_safety,
        max_growth=options.max_step_growth,
        breakpoints=breakpoints,
        order_control=options.resolved_order_control(method),
    )
    multistep = method.is_multistep
    n_nodes = assembly.n_nodes
    stride = options.record_stride
    recorder.append(0.0, x)
    budget = _RunBudget.for_options(options)

    def abort(reason: str, error: Optional[BaseException] = None) -> _RunAbort:
        stats = controller.stats()
        stats["steps"] = controller.accepted
        stats["dt_cache_entries"] = assembly.n_dt_entries
        stats["t_abort"] = controller.t
        return _RunAbort(reason, error=error, stats=stats)

    while not controller.finished:
        t = controller.t
        if budget is not None:
            exhausted = budget.charge()
            if exhausted is not None:
                raise abort(exhausted)
        t_target, dt = controller.propose()
        if skip_mask is not None:
            # One skip decision per candidate step (evaluated at the
            # step's landing time), shared by the probe and halves so
            # the Richardson pair sees one consistent working set.
            solver.set_skipped(skip_mask(t_target))
        # One order schedule for the whole batch: the controller's
        # target clamped by the shared committed history.
        order = (
            controller.candidate_order(assembly.history_points)
            if multistep
            else None
        )
        ephemeral = dt != controller.dt
        snapshot = assembly.snapshot_state()
        frozen = solver.frozen
        freeze = frozen if frozen.any() else None
        try:
            assembly.set_dt(dt, ephemeral=ephemeral, order=order)
            rhs_lin = assembly.step_rhs(t_target)
            x_full = solver.step(x, rhs_lin, t_target)
            half = 0.5 * dt
            t_mid = t + half
            assembly.set_dt(half, ephemeral=ephemeral, order=order)
            rhs_lin = assembly.step_rhs(t_mid)
            x_mid = solver.step(x, rhs_lin, t_mid)
            assembly.commit(x_mid, t_mid, freeze=freeze)
            rhs_lin = assembly.step_rhs(t_target)
            x_half = solver.step(x_mid, rhs_lin, t_target)
        except ConvergenceError as exc:
            assembly.restore_state(snapshot)
            health_failure = getattr(exc, "phase", None) == "health"
            # A non-finite sample fails identically at any step size:
            # skip the dt shrinking and quarantine it directly.
            if not controller.at_dt_floor and not health_failure:
                controller.reject_nonconvergence()
                continue
            # Newton is dead at the dt floor.  Quarantine the failed
            # samples (when enabled) so the survivors keep going, or
            # propagate — the seed behaviour.
            failed = getattr(exc, "failed_samples", None)
            if not solver.quarantine_enabled or not failed:
                if health_failure:
                    raise abort("health", error=exc)
                raise
            solver.quarantine(
                failed, t, "health" if health_failure else "newton_dt_min"
            )
            controller.reset_floor_rejections()
            if solver.quarantined.all():
                raise abort("all_quarantined", error=exc)
            continue
        mask = None if freeze is None else ~frozen
        ratio = controller.error_ratio_many(x_full, x_half, n_nodes, mask=mask)
        if ratio <= 1.0:
            if certifier is not None:
                certifier.check_step(x_half, rhs_lin, t_target, eligible=mask)
            assembly.commit(x_half, t_target, freeze=freeze)
            x = x_half
            if skip_mask is not None:
                solver.skipped_steps[solver.skipped] += 1
            controller.accept(t_target, dt, ratio)
            if multistep and controller.crossed_breakpoint:
                assembly.reset_history()
            if controller.accepted % stride == 0:
                recorder.append(t_target, x)
        else:
            assembly.restore_state(snapshot)
            try:
                controller.reject(ratio)
            except SimulationError as exc:
                # LTE underflow: dt cannot shrink further.  Quarantine
                # the samples whose Richardson estimate is still over
                # tolerance; the shared grid then answers only to the
                # survivors.
                if not solver.quarantine_enabled:
                    raise abort("step_underflow", error=exc)
                ratios = controller.error_ratio_samples(x_full, x_half, n_nodes)
                culprits = np.nonzero((ratios > 1.0) & ~solver.frozen)[0]
                if culprits.size == 0:
                    raise abort("step_underflow", error=exc)
                solver.quarantine(culprits, t, "lte_underflow")
                controller.reset_floor_rejections()
                if solver.quarantined.all():
                    raise abort("all_quarantined", error=exc)
    stats = controller.stats()
    stats["steps"] = controller.accepted
    stats["dt_cache_entries"] = assembly.n_dt_entries
    return stats
