"""Exponential junction diode with overflow-safe linearized tail.

The same junction math is reused by the MOSFET body diodes, so the
evaluation lives in a standalone function :func:`junction_iv`.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import NetlistError
from .component import ACStampContext, Component, StampContext

__all__ = ["Diode", "junction_iv", "DEFAULT_IS", "DEFAULT_N", "VT_300K"]

#: Thermal voltage at ~300 K.
VT_300K = 0.02585
#: Default junction saturation current (A).
DEFAULT_IS = 1e-14
#: Default emission coefficient.
DEFAULT_N = 1.0

#: Junction voltage beyond which the exponential is continued linearly to
#: keep Newton iterations overflow-free (about 40 * n * Vt ≈ 1 V).
_EXP_LIMIT = 40.0


def junction_iv(v: float, i_sat: float, n: float = DEFAULT_N, vt: float = VT_300K) -> Tuple[float, float]:
    """Diode current and conductance at junction voltage ``v``.

    For ``v`` above ``_EXP_LIMIT * n * vt`` the exponential is continued
    with its tangent so the value stays finite during wild Newton
    excursions; the continuation is C1 so convergence is unaffected
    once the iterate returns to the physical region.
    """
    nvt = n * vt
    v_lim = _EXP_LIMIT * nvt
    if v <= v_lim:
        # Guard deep reverse bias too: exp underflows gracefully.
        e = math.exp(max(v, -_EXP_LIMIT * nvt) / nvt)
        i = i_sat * (e - 1.0)
        g = i_sat * e / nvt
    else:
        e = math.exp(_EXP_LIMIT)
        g = i_sat * e / nvt
        i = i_sat * (e - 1.0) + g * (v - v_lim)
    return i, g


class Diode(Component):
    """Junction diode from anode to cathode."""

    def __init__(
        self,
        name: str,
        anode: str,
        cathode: str,
        i_sat: float = DEFAULT_IS,
        n: float = DEFAULT_N,
        vt: float = VT_300K,
    ):
        super().__init__(name, (anode, cathode))
        if i_sat <= 0:
            raise NetlistError(f"{name}: saturation current must be positive")
        if n <= 0 or vt <= 0:
            raise NetlistError(f"{name}: emission coefficient and Vt must be positive")
        self.i_sat = float(i_sat)
        self.n = float(n)
        self.vt = float(vt)

    def is_nonlinear(self) -> bool:
        return True

    def stamp(self, ctx: StampContext) -> None:
        a, c = self._n
        v = ctx.v(a) - ctx.v(c)
        i, g = junction_iv(v, self.i_sat, self.n, self.vt)
        g += ctx.gmin
        i += ctx.gmin * v
        sys = ctx.system
        sys.stamp_conductance(a, c, g)
        sys.stamp_current(a, c, i - g * v)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        a, c = self._n
        v = ctx.v_op(a) - ctx.v_op(c)
        _i, g = junction_iv(v, self.i_sat, self.n, self.vt)
        ctx.stamp_admittance(a, c, g)

    def current(self, x: np.ndarray) -> float:
        a, c = self._n
        va = x[a] if a >= 0 else 0.0
        vc = x[c] if c >= 0 else 0.0
        i, _g = junction_iv(va - vc, self.i_sat, self.n, self.vt)
        return i
