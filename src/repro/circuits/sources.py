"""Independent voltage and current sources with time-dependent values.

A source value is either a constant or a *waveform function* of time.
Factory helpers build the common SPICE-style stimuli (DC, sine, pulse,
piece-wise linear).

Breakpoints
-----------
The adaptive transient engine must not integrate *across* a stimulus
discontinuity (a pulse edge, a PWL corner, a delayed sine turning on):
the local-truncation-error estimate is blind to an event that falls
strictly inside a step.  Each stimulus factory therefore annotates the
function it returns with the times where its derivative is
discontinuous; :func:`source_breakpoints` recovers them for any value
function, returning an empty tuple for plain callables that carry no
annotation (which is always safe — merely slower, never wrong, for
genuinely smooth stimuli).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Tuple, Union

import numpy as np

from ..errors import NetlistError
from .component import ACStampContext, Component, StampContext

__all__ = [
    "VoltageSource",
    "CurrentSource",
    "dc",
    "sine",
    "pulse",
    "pwl",
    "source_breakpoints",
]

ValueSpec = Union[float, Callable[[float], float]]

#: Safety cap on generated breakpoints (a fast periodic pulse over a
#: long run would otherwise enumerate millions of edges).
_MAX_BREAKPOINTS = 10_000


def source_breakpoints(func: Callable[[float], float], t_stop: float) -> Tuple[float, ...]:
    """Derivative-discontinuity times of a stimulus in ``(0, t_stop)``.

    Stimuli built by the factories in this module carry a
    ``breakpoints(t_stop)`` annotation; anything else (plain lambdas,
    :func:`dc`) yields no breakpoints.
    """
    generator = getattr(func, "breakpoints", None)
    if generator is None:
        return ()
    return tuple(t for t in generator(t_stop) if 0.0 < t < t_stop)


def dc(value: float) -> Callable[[float], float]:
    """Constant stimulus.

    The returned function carries a ``constant`` annotation so batch
    engines can hoist the value out of their time loops.
    """
    def _f(_t: float) -> float:
        return value
    _f.constant = float(value)
    return _f


def sine(
    amplitude: float,
    frequency: float,
    offset: float = 0.0,
    phase_deg: float = 0.0,
    delay: float = 0.0,
) -> Callable[[float], float]:
    """``offset + amplitude*sin(2*pi*f*(t-delay) + phase)`` (0 before delay)."""
    if frequency <= 0:
        raise NetlistError("sine(): frequency must be positive")
    phase = math.radians(phase_deg)

    def _f(t: float) -> float:
        if t < delay:
            return offset + amplitude * math.sin(phase)
        return offset + amplitude * math.sin(2.0 * math.pi * frequency * (t - delay) + phase)

    if delay > 0.0:
        _f.breakpoints = lambda t_stop: (delay,)
    return _f


def pulse(
    v1: float,
    v2: float,
    delay: float = 0.0,
    rise: float = 1e-9,
    fall: float = 1e-9,
    width: float = 1e-6,
    period: float = float("inf"),
) -> Callable[[float], float]:
    """SPICE-style pulse between ``v1`` and ``v2``."""
    if rise <= 0 or fall <= 0 or width < 0:
        raise NetlistError("pulse(): rise/fall must be positive, width >= 0")

    def _f(t: float) -> float:
        if t < delay:
            return v1
        tau = t - delay
        if math.isfinite(period):
            tau = tau % period
        if tau < rise:
            return v1 + (v2 - v1) * tau / rise
        tau -= rise
        if tau < width:
            return v2
        tau -= width
        if tau < fall:
            return v2 + (v1 - v2) * tau / fall
        return v1

    def _breakpoints(t_stop: float):
        edges = (delay, delay + rise, delay + rise + width, delay + rise + width + fall)
        if not math.isfinite(period):
            return edges
        out = []
        cycle = 0
        while len(out) < _MAX_BREAKPOINTS:
            base = cycle * period
            if base + delay >= t_stop:
                break
            out.extend(base + e for e in edges)
            cycle += 1
        return out

    _f.breakpoints = _breakpoints
    return _f


def pwl(points: Sequence[Tuple[float, float]]) -> Callable[[float], float]:
    """Piece-wise-linear stimulus through (time, value) points."""
    if len(points) < 2:
        raise NetlistError("pwl(): need at least two points")
    times = np.asarray([p[0] for p in points], dtype=float)
    values = np.asarray([p[1] for p in points], dtype=float)
    if not np.all(np.diff(times) > 0):
        raise NetlistError("pwl(): times must be strictly increasing")

    def _f(t: float) -> float:
        return float(np.interp(t, times, values))

    _f.breakpoints = lambda t_stop: tuple(float(t) for t in times)
    return _f


class VoltageSource(Component):
    """Independent voltage source from ``n+`` to ``n-``.

    Positive branch current flows from ``n+`` through the source to
    ``n-`` (i.e. a positive current means the source is *sinking*
    current at its positive terminal, SPICE convention).
    """

    n_branches = 1
    supports_stamp_split = True

    def __init__(self, name: str, positive: str, negative: str, value: ValueSpec, ac_magnitude: float = 0.0):
        super().__init__(name, (positive, negative))
        self._func = value if callable(value) else dc(float(value))
        self.ac_magnitude = float(ac_magnitude)

    def value_at(self, t: float) -> float:
        return float(self._func(t))

    def set_value(self, value: ValueSpec) -> None:
        """Replace the stimulus (used by DC sweeps and fault injection)."""
        self._func = value if callable(value) else dc(float(value))

    def breakpoints(self, t_stop: float) -> Tuple[float, ...]:
        """Stimulus discontinuity times for adaptive step control."""
        return source_breakpoints(self._func, t_stop)

    def stamp(self, ctx: StampContext) -> None:
        self.stamp_static(ctx)
        self.stamp_dynamic(ctx)

    def stamp_static(self, ctx: StampContext) -> None:
        a, b = self._n
        br = self._b[0]
        sys = ctx.system
        sys.add_G(a, br, 1.0)
        sys.add_G(b, br, -1.0)
        sys.add_G(br, a, 1.0)
        sys.add_G(br, b, -1.0)

    def stamp_dynamic(self, ctx: StampContext) -> None:
        ctx.system.add_rhs(
            self._b[0], ctx.source_scale * self.value_at(ctx.time)
        )

    def stamp_ac(self, ctx: ACStampContext) -> None:
        a, b = self._n
        br = self._b[0]
        ctx.add_G(a, br, 1.0)
        ctx.add_G(b, br, -1.0)
        ctx.add_G(br, a, 1.0)
        ctx.add_G(br, b, -1.0)
        ctx.add_rhs(br, self.ac_magnitude)

    def current(self, x: np.ndarray) -> float:
        """Branch current (positive flowing n+ -> source -> n-)."""
        return float(x[self._b[0]])


class CurrentSource(Component):
    """Independent current source driving current from ``n+`` to ``n-``.

    SPICE convention: the source removes current from the ``n+`` node
    and injects it into the ``n-`` node.
    """

    supports_stamp_split = True

    def __init__(self, name: str, positive: str, negative: str, value: ValueSpec, ac_magnitude: float = 0.0):
        super().__init__(name, (positive, negative))
        self._func = value if callable(value) else dc(float(value))
        self.ac_magnitude = float(ac_magnitude)

    def value_at(self, t: float) -> float:
        return float(self._func(t))

    def set_value(self, value: ValueSpec) -> None:
        self._func = value if callable(value) else dc(float(value))

    def breakpoints(self, t_stop: float) -> Tuple[float, ...]:
        """Stimulus discontinuity times for adaptive step control."""
        return source_breakpoints(self._func, t_stop)

    def stamp(self, ctx: StampContext) -> None:
        self.stamp_dynamic(ctx)

    def stamp_static(self, ctx: StampContext) -> None:
        """A current source has no matrix footprint at all."""

    def stamp_dynamic(self, ctx: StampContext) -> None:
        current = ctx.source_scale * self.value_at(ctx.time)
        ctx.system.stamp_current(self._n[0], self._n[1], current)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        ctx.add_rhs(self._n[0], -self.ac_magnitude)
        ctx.add_rhs(self._n[1], self.ac_magnitude)
