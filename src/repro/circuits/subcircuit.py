"""Hierarchical netlist composition.

A :class:`SubcircuitDefinition` is a reusable cell described by a
builder function over a :class:`CellBuilder`; instantiating it into a
parent :class:`~repro.circuits.netlist.Circuit` prefixes all internal
component and node names and splices the declared ports onto parent
nodes — the standard SPICE ``.subckt`` mechanism.

Example::

    def divider(cell: CellBuilder) -> None:
        cell.circuit.resistor(cell.name("R1"), cell.port("in"), cell.node("mid"), 1e3)
        cell.circuit.resistor(cell.name("R2"), cell.node("mid"), cell.port("out"), 1e3)

    DIVIDER = SubcircuitDefinition("div", ports=("in", "out"), build=divider)
    DIVIDER.instantiate(circuit, "X1", {"in": "a", "out": "0"})
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

from ..errors import NetlistError
from .netlist import GROUND_NAMES, Circuit

__all__ = ["CellBuilder", "SubcircuitDefinition"]


class CellBuilder:
    """Name-scoping helper handed to a subcircuit's build function."""

    def __init__(self, circuit: Circuit, instance: str, port_map: Mapping[str, str]):
        self.circuit = circuit
        self.instance = instance
        self._ports = dict(port_map)

    def name(self, local: str) -> str:
        """Component name scoped to this instance (``X1.R1``)."""
        return f"{self.instance}.{local}"

    def node(self, local: str) -> str:
        """Internal node scoped to this instance (``X1.mid``)."""
        if local in GROUND_NAMES:
            return local
        return f"{self.instance}.{local}"

    def port(self, port_name: str) -> str:
        """Parent node attached to a declared port."""
        try:
            return self._ports[port_name]
        except KeyError:
            raise NetlistError(
                f"{self.instance}: unknown port {port_name!r}; "
                f"declared ports: {sorted(self._ports)}"
            ) from None


@dataclass(frozen=True)
class SubcircuitDefinition:
    """A reusable cell: declared ports plus a builder function."""

    cell_name: str
    ports: Tuple[str, ...]
    build: Callable[[CellBuilder], None]

    def __init__(self, cell_name: str, ports: Sequence[str], build: Callable[[CellBuilder], None]):
        if not cell_name:
            raise NetlistError("subcircuit needs a name")
        if len(set(ports)) != len(ports):
            raise NetlistError(f"{cell_name}: duplicate port names")
        if not callable(build):
            raise NetlistError(f"{cell_name}: build must be callable")
        object.__setattr__(self, "cell_name", cell_name)
        object.__setattr__(self, "ports", tuple(ports))
        object.__setattr__(self, "build", build)

    def instantiate(
        self,
        circuit: Circuit,
        instance: str,
        connections: Mapping[str, str],
    ) -> CellBuilder:
        """Splice one instance of the cell into ``circuit``.

        ``connections`` maps every declared port to a parent node name.
        Returns the builder (whose ``node``/``name`` helpers are handy
        for probing internals in tests).
        """
        if not instance:
            raise NetlistError("instance name must be non-empty")
        missing = set(self.ports) - set(connections)
        if missing:
            raise NetlistError(
                f"{instance} ({self.cell_name}): unconnected ports {sorted(missing)}"
            )
        extra = set(connections) - set(self.ports)
        if extra:
            raise NetlistError(
                f"{instance} ({self.cell_name}): unknown ports {sorted(extra)}"
            )
        builder = CellBuilder(circuit, instance, connections)
        self.build(builder)
        return builder
