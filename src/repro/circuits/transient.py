"""Fixed-step transient analysis with trapezoidal or backward-Euler
integration and Newton iteration at every time point.

The oscillator startup experiment (Fig 16) runs a few hundred carrier
cycles of a 2–5 MHz LC tank; a fixed step of ~1/60 of the carrier
period with trapezoidal integration keeps both amplitude and frequency
errors well below a percent, which is plenty for shape-level
reproduction.

Engine architecture (incremental stamping)
------------------------------------------
This is the hot path behind the startup bench, the supply-loss
corners, and every Monte-Carlo / FMEA campaign, so the system is
assembled incrementally via :class:`~repro.circuits.assembly.
TransientAssembly`: linear matrix stamps once per run, the linear RHS
once per step, and only nonlinear devices per Newton iteration.  On
top of the cache the engine picks a solve strategy per run:

* ``linear`` — no nonlinear devices: one cached factorization
  (:class:`~repro.circuits.linsolve.ReusableLU`) serves every step.
* ``linear-restamp`` — linear circuit containing components outside
  the stamp split (possibly time-varying): fresh assembly and one
  undamped solve per step, never Newton iteration.
* ``rank1`` — exactly one :class:`~repro.circuits.controlled.
  NonlinearVCCS` (the Fig 1 oscillator): the Jacobian is the cached
  base matrix plus a rank-1 update, so each Newton iterate is a
  Sherman–Morrison formula around one cached factorization — the
  inner loop performs no matrix assembly and no LAPACK call.
* ``general`` — full Newton; each iteration copies the cached parts
  and restamps only the nonlinear devices.
* ``chord`` (opt-in via ``TransientOptions(jacobian="chord")``) —
  quasi-Newton with a frozen, factored Jacobian reused across
  iterations *and* steps; it refactors only when convergence slows
  below ``chord_refactor_ratio`` per iteration.

Results are recorded into a preallocated ``(n_records, n_columns)``
array; pass ``record_nodes`` to store only the node voltages a
campaign actually consumes.

Waveform equivalence with the pre-optimization engine is pinned by the
golden tests against :func:`~repro.circuits.reference.
run_transient_reference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.waveform import Waveform
from ..errors import ConvergenceError, NetlistError, SimulationError
from .assembly import TransientAssembly
from .component import StampContext
from .dcop import NewtonOptions, solve_dc
from .linsolve import ReusableLU, damp_voltage_delta, solve_dense
from .netlist import GROUND_NAMES, Circuit

__all__ = ["TransientOptions", "TransientResult", "run_transient"]


@dataclass
class TransientOptions:
    """Settings for :func:`run_transient`."""

    t_stop: float = 1e-3
    dt: float = 1e-6
    method: str = "trap"
    #: Start from DC operating point (False: start from ICs / zeros).
    use_dc_operating_point: bool = True
    newton: NewtonOptions = field(default_factory=NewtonOptions)
    #: Record every n-th step (1 = all).
    record_stride: int = 1
    #: Node names to record (None = every unknown, including branch
    #: currents).  Campaigns that consume two traces stop paying for
    #: the full state vector.
    record_nodes: Optional[Sequence[str]] = None
    #: Jacobian strategy: "auto" picks the fastest exact-Newton path,
    #: "full" forces per-iteration assembly + solve, "chord" reuses a
    #: frozen LU factorization and refactors only when Newton slows.
    jacobian: str = "auto"
    #: Chord mode: refactor when an iteration shrinks the update by
    #: less than this factor (1.0 would demand monotone convergence).
    chord_refactor_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.t_stop <= 0 or self.dt <= 0:
            raise SimulationError("t_stop and dt must be positive")
        if self.dt >= self.t_stop:
            raise SimulationError("dt must be smaller than t_stop")
        if self.method not in ("trap", "be"):
            raise SimulationError(f"unknown method {self.method!r}")
        if self.record_stride < 1:
            raise SimulationError("record_stride must be >= 1")
        if self.jacobian not in ("auto", "full", "chord"):
            raise SimulationError(f"unknown jacobian mode {self.jacobian!r}")
        if not 0.0 < self.chord_refactor_ratio <= 1.0:
            raise SimulationError("chord_refactor_ratio must be in (0, 1]")


@dataclass
class TransientResult:
    """Recorded node voltages (and branch currents) over time.

    With ``record_nodes`` the column space shrinks to the requested
    node voltages; asking for anything that was not recorded raises
    :class:`~repro.errors.SimulationError` rather than guessing.
    """

    circuit: Circuit
    t: np.ndarray
    x: np.ndarray  # shape (n_samples, n_recorded_columns)
    #: Column names when a ``record_nodes`` subset was recorded.
    recorded_nodes: Optional[Tuple[str, ...]] = None
    #: Engine diagnostics: strategy, Newton iteration totals, LU
    #: refactorization count.
    stats: Dict[str, object] = field(default_factory=dict)

    def _column(self, node: str) -> Optional[int]:
        """Recorded column for a node; None means ground (zero trace)."""
        if node in GROUND_NAMES:
            return None
        if self.recorded_nodes is not None:
            try:
                return self.recorded_nodes.index(node)
            except ValueError:
                raise SimulationError(
                    f"node {node!r} was not recorded; record_nodes="
                    f"{list(self.recorded_nodes)}"
                ) from None
        try:
            idx = self.circuit.node_index(node)
        except NetlistError:
            raise SimulationError(
                f"unknown node {node!r}; known nodes: "
                f"{list(self.circuit.node_names)}"
            ) from None
        return idx if idx >= 0 else None

    def waveform(self, node: str) -> Waveform:
        column = self._column(node)
        if column is None:
            y = np.zeros_like(self.t)
        else:
            y = self.x[:, column]
        return Waveform(self.t, y, name=node)

    def differential(self, node_p: str, node_n: str) -> Waveform:
        wp = self.waveform(node_p)
        wn = self.waveform(node_n)
        return Waveform(self.t, wp.y - wn.y, name=f"{node_p}-{node_n}")

    def branch_current(self, component_name: str) -> Waveform:
        component = self.circuit[component_name]
        branches = component.branch_indices
        if not branches:
            raise SimulationError(f"{component_name} has no branch current")
        if self.recorded_nodes is not None:
            raise SimulationError(
                "branch currents are not available when record_nodes "
                "restricts recording to node voltages"
            )
        return Waveform(self.t, self.x[:, branches[0]], name=f"i({component_name})")


def _voltage_tol(x: np.ndarray, n_nodes: int, options: NewtonOptions) -> float:
    return options.abstol_v + options.reltol * float(np.abs(x[:n_nodes]).max())


class _StepSolver:
    """Per-run solver state shared across steps (caches, statistics)."""

    def __init__(
        self,
        assembly: TransientAssembly,
        options: NewtonOptions,
        jacobian: str,
        chord_refactor_ratio: float,
    ):
        self.assembly = assembly
        self.options = options
        self.n_nodes = assembly.n_nodes
        self.newton_iterations = 0
        self.chord_refactor_ratio = chord_refactor_ratio

        self.lu: Optional[ReusableLU] = None
        device = assembly.rank1_device()
        if assembly.is_linear:
            self.strategy = "linear"
            self.lu = ReusableLU(assembly.G_base)
        elif not assembly.circuit.has_nonlinear():
            # Linear circuit containing components that did not opt
            # into the stamp split (their stamps may vary with time):
            # one fresh assembly and one undamped solve per step, the
            # seed engine's exact linear behaviour.
            self.strategy = "linear-restamp"
        elif jacobian == "chord":
            self.strategy = "chord"
            self.lu = ReusableLU()
        elif device is not None and jacobian == "auto":
            self.strategy = "rank1"
            self.lu = ReusableLU(assembly.G_base)
            self._device = device
            op, on, cp, cn = device._n
            self._cp, self._cn = cp, cn
            u, _v = assembly.rank1_vectors()
            self._u = u
            self._w = self.lu.solve(u)
            self._vw = self._ctrl_diff(self._w)
            w_v = self._w[: self.n_nodes]
            self._w_vmax = float(np.abs(w_v).max()) if w_v.size else 0.0
        else:
            self.strategy = "general"

    def _ctrl_diff(self, vec: np.ndarray) -> float:
        cp, cn = self._cp, self._cn
        value = vec[cp] if cp >= 0 else 0.0
        if cn >= 0:
            value = value - vec[cn]
        return float(value)

    @property
    def lu_refactorizations(self) -> int:
        return self.lu.n_factorizations if self.lu is not None else 0

    # -- one time step ------------------------------------------------------

    def step(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        if self.strategy == "linear":
            return self.lu.solve(rhs_lin)
        if self.strategy == "linear-restamp":
            G, rhs = self.assembly.assemble(x, rhs_lin, time, states)
            self.newton_iterations += 1
            return solve_dense(G, rhs)
        if self.strategy == "rank1":
            return self._step_rank1(x, rhs_lin, time, states)
        if self.strategy == "chord":
            return self._step_chord(x, rhs_lin, time, states)
        return self._step_general(x, rhs_lin, time, states)

    def _fail(self, time: float, residual: float) -> ConvergenceError:
        return ConvergenceError(
            f"transient Newton failed at t={time:.4e}",
            iterations=self.options.max_iterations,
            residual=residual,
        )

    def _step_general(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        options = self.options
        last_delta = np.inf
        for _iteration in range(options.max_iterations):
            G, rhs = self.assembly.assemble(x, rhs_lin, time, states)
            x_new = solve_dense(G, rhs)
            self.newton_iterations += 1
            delta, last_delta = damp_voltage_delta(
                x_new - x, self.n_nodes, options.max_step
            )
            x = x + delta
            if last_delta < _voltage_tol(x, self.n_nodes, options):
                return x
        raise self._fail(time, last_delta)

    def _step_rank1(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        """Sherman–Morrison Newton around the cached base factorization.

        The Jacobian is always ``G_base + gm*u@v.T``, so every Newton
        solve collapses to ``x_new = z_lin - q*w`` with cached vectors
        ``z_lin`` (once per step) and ``w`` (once per run), and a
        scalar ``q`` from the device linearization.  Once an undamped
        iterate lands exactly on that line, the remaining iterations —
        update, damping, convergence test — reduce to *scalar*
        arithmetic; the solution vector is materialized once at
        convergence.
        """
        options = self.options
        linearize = self._device.linearize
        w, vw = self._w, self._vw
        w_vmax = self._w_vmax
        n = self.n_nodes
        max_step = options.max_step
        z_lin = self.lu.solve(rhs_lin)
        zl_c = self._ctrl_diff(z_lin)
        x_v = x[:n]
        tol = options.abstol_v + options.reltol * (
            float(np.abs(x_v).max()) if x_v.size else 0.0
        )
        v_ctrl = self._ctrl_diff(x)
        on_line = False  # is x exactly z_lin - c*w?
        c = 0.0
        last_delta = np.inf
        for _iteration in range(options.max_iterations):
            gm, i_eq = linearize(v_ctrl)
            denom = 1.0 + gm * vw
            self.newton_iterations += 1
            if abs(denom) < 1e-12:
                # Jacobian momentarily singular along the rank-1
                # direction; fall back to a dense solve.
                if on_line:
                    x = z_lin - c * w
                    on_line = False
                G, rhs = self.assembly.assemble(x, rhs_lin, time, states)
                x_new = solve_dense(G, rhs)
                delta, last_delta = damp_voltage_delta(
                    x_new - x, n, options.max_step
                )
                x = x + delta
                v_ctrl = self._ctrl_diff(x)
                if last_delta < tol:
                    return x
                continue
            q = i_eq + gm * (zl_c - i_eq * vw) / denom
            if on_line:
                last_delta = abs(c - q) * w_vmax
                if last_delta > max_step:
                    c = c + (max_step / last_delta) * (q - c)
                    last_delta = max_step
                else:
                    c = q
                v_ctrl = zl_c - c * vw
                if last_delta < tol:
                    return z_lin - c * w
            else:
                x_new = z_lin - q * w
                delta, last_delta = damp_voltage_delta(x_new - x, n, max_step)
                if last_delta == max_step:  # damped: stays off the line
                    x = x + delta
                    v_ctrl = self._ctrl_diff(x)
                else:
                    x = x_new
                    on_line = True
                    c = q
                    v_ctrl = zl_c - c * vw
                if last_delta < tol:
                    return x
        raise self._fail(time, last_delta)

    def _step_chord(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        """Frozen-Jacobian Newton with refactor-on-slow-convergence."""
        options = self.options
        last_delta = np.inf
        previous_delta = np.inf
        for _iteration in range(options.max_iterations):
            G, rhs = self.assembly.assemble(x, rhs_lin, time, states)
            if not self.lu.is_factored:
                self.lu.factor(G)
            residual = G.dot(x) - rhs
            dx = -self.lu.solve(residual)
            self.newton_iterations += 1
            delta, last_delta = damp_voltage_delta(
                dx, self.n_nodes, options.max_step
            )
            x = x + delta
            if last_delta < _voltage_tol(x, self.n_nodes, options):
                return x
            if last_delta > self.chord_refactor_ratio * previous_delta:
                # Convergence stalled: the frozen Jacobian has drifted
                # too far from the current linearization — refresh it.
                self.lu.factor(G)
                previous_delta = np.inf
            else:
                previous_delta = last_delta
        raise self._fail(time, last_delta)


def run_transient(circuit: Circuit, options: Optional[TransientOptions] = None) -> TransientResult:
    """Integrate the circuit from 0 to ``t_stop``.

    The initial condition is the DC operating point (sources evaluated
    at t = 0) unless ``use_dc_operating_point`` is False, in which case
    node voltages start at zero and component ``ic`` values are honored.
    """
    options = options or TransientOptions()
    circuit.prepare()

    if options.use_dc_operating_point:
        op = solve_dc(circuit, options=options.newton)
        x = op.x.copy()
    else:
        x = np.zeros(circuit.size)

    assembly = TransientAssembly(
        circuit, options.dt, options.method, options.newton.gmin
    )
    assembly.reactive.init_state(x)
    states: Dict[str, object] = {}
    for component in circuit:
        if component.name in assembly.vectorized_names:
            continue
        state = component.init_state(x)
        if state is not None:
            states[component.name] = state

    solver = _StepSolver(
        assembly, options.newton, options.jacobian, options.chord_refactor_ratio
    )

    # -- preallocated recording ---------------------------------------------
    n_steps = int(round(options.t_stop / options.dt))
    stride = options.record_stride
    n_records = n_steps // stride + 1
    record_indices: Optional[np.ndarray] = None
    recorded_nodes: Optional[Tuple[str, ...]] = None
    if options.record_nodes is not None:
        recorded_nodes = tuple(options.record_nodes)
        indices = []
        for name in recorded_nodes:
            idx = circuit.node_index(name)  # unknown name -> NetlistError
            if idx < 0:
                raise SimulationError(
                    f"cannot record ground node {name!r}; it is 0 V by "
                    "definition"
                )
            indices.append(idx)
        record_indices = np.asarray(indices, dtype=np.intp)
    n_columns = circuit.size if record_indices is None else len(record_indices)
    records = np.empty((n_records, n_columns))
    times = np.empty(n_records)

    def record(row: int, time: float, x: np.ndarray) -> None:
        times[row] = time
        records[row] = x if record_indices is None else x[record_indices]

    record(0, 0.0, x)
    row = 1
    for step in range(1, n_steps + 1):
        time = step * options.dt
        rhs_lin = assembly.step_rhs(time, states, x)
        x = solver.step(x, rhs_lin, time, states)
        assembly.commit(x, time, states)
        if step % stride == 0:
            record(row, time, x)
            row += 1
    stats = {
        "strategy": solver.strategy,
        "steps": n_steps,
        "newton_iterations": solver.newton_iterations,
        "lu_refactorizations": solver.lu_refactorizations,
    }
    return TransientResult(
        circuit=circuit,
        t=times,
        x=records,
        recorded_nodes=recorded_nodes,
        stats=stats,
    )
