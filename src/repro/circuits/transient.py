"""Transient analysis: the engine produces a time grid.

Historically this module baked a fixed step into every layer; it is
now structured around a step *controller*: the engine integrates from
0 to ``t_stop`` and the time grid is an output, uniform or not.  Two
step-control modes share every other part of the stack:

* ``TransientOptions(step_control="fixed")`` (default) — the classic
  fixed grid, ``t_k = k*dt``; bit-compatible with the seed engine and
  pinned to :func:`~repro.circuits.reference.run_transient_reference`
  by the golden tests.
* ``step_control="adaptive"`` — an LTE-based
  :class:`~repro.circuits.stepcontrol.StepController` proposes each
  step: the active method's local truncation error is estimated by
  step doubling, steps are accepted/rejected against
  ``lte_reltol``/``lte_abstol``, the step size walks a quantized
  ``dt_max/2^k`` grid between ``dt_min`` and ``dt_max`` with bounded
  growth, and source discontinuities (pulse edges, PWL corners) force
  exact step boundaries.  Stiff-then-slow runs — oscillator startup,
  supply-loss decay — take large steps through the slow phases that a
  fixed carrier-resolution grid pays for at every instant.

The integrator itself is pluggable (:mod:`~repro.circuits.
integration`): ``method`` accepts ``"trap"``/``"be"`` (the bit-pinned
one-step classics), ``"bdf2"``, and ``"gear"`` — variable-order BDF
with order control on the same LTE machinery (``order_control``,
``max_order``).  The BDF members are strongly damping at large
``omega*dt``, which is what lets them stride through stiff decays and
quiet tails that trapezoidal must keep resolving; the flip side is
numerical damping of *live* oscillatory content (a driven or growing
carrier sags by roughly Q times the per-step damping), so trap
remains the right default for carrier-resolved runs and the BDF tiers
are the tool for decay/tail-dominated scenarios.

Engine architecture (incremental stamping, dt-keyed)
----------------------------------------------------
This is the hot path behind the startup bench, the supply-loss
corners, and every Monte-Carlo / FMEA campaign, so the system is
assembled incrementally via :class:`~repro.circuits.assembly.
TransientAssembly`: linear matrix stamps once per *step size* (cached
per ``dt`` in a small LRU, so the controller's few quantized step
sizes never thrash refactorizations), the linear RHS once per step,
and only nonlinear devices per Newton iteration.  On top of the cache
the engine picks a solve strategy per run:

* ``linear`` — no nonlinear devices: one cached factorization per
  step size (:class:`~repro.circuits.linsolve.ReusableLU`) serves
  every step taken at that size.
* ``linear-restamp`` — linear circuit containing components outside
  the stamp split (possibly time-varying): fresh assembly and one
  undamped solve per step, never Newton iteration.
* ``rank1`` — exactly one :class:`~repro.circuits.controlled.
  NonlinearVCCS` (the Fig 1 oscillator): the Jacobian is the cached
  base matrix plus a rank-1 update, so each Newton iterate is a
  Sherman–Morrison formula around one cached factorization — the
  inner loop performs no matrix assembly and no LAPACK call.
* ``woodbury`` — 2–4 NonlinearVCCS devices (mirror cascades): the
  rank-k generalization; each Newton iterate solves a k×k system via
  the Woodbury identity around the same cached factorization.
* ``general`` — full Newton; each iteration copies the cached parts
  and restamps only the nonlinear devices.
* ``chord`` (opt-in via ``TransientOptions(jacobian="chord")``) —
  quasi-Newton with a frozen, factored Jacobian reused across
  iterations *and* steps; it refactors only when convergence slows
  below ``chord_refactor_ratio`` per iteration or the step size
  changes.

Results are recorded into a growable buffer that finalizes into a
:class:`TransientResult` with a (possibly non-uniform) ``t``; pass
``record_nodes`` to store only the node voltages a campaign actually
consumes.  Downstream analysis (:class:`~repro.analysis.waveform.
Waveform` calculus, measurements, envelope extraction) is correct on
non-uniform grids, so adaptive results flow through unchanged.

Waveform equivalence of the fixed-step mode with the pre-optimization
engine is pinned by the golden tests against :func:`~repro.circuits.
reference.run_transient_reference`; adaptive mode is validated at
shape level against fine fixed-step runs.
"""

from __future__ import annotations

import time as time_module

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.waveform import Waveform
from ..errors import ConvergenceError, NetlistError, SimulationError
from .assembly import TransientAssembly
from .backend import KrylovBackend, MatrixBackend, resolve_backend
from .dcop import NewtonOptions, continuation_ladder, solve_dc
from .health import CONDITION_LIMIT, HealthReport, check_grid_invariants
from .integration import (
    KNOWN_METHODS,
    IntegrationMethod,
    resolve_method,
)
from .linsolve import damp_voltage_delta, solve_dense
from .netlist import GROUND_NAMES, Circuit
from .preflight import PREFLIGHT_MODES, apply_preflight
from .stepcontrol import (
    Phase,
    PhaseSchedule,
    StepController,
    collect_breakpoints,
)

__all__ = ["TransientOptions", "TransientResult", "run_transient"]


@dataclass
class TransientOptions:
    """Settings for :func:`run_transient`."""

    t_stop: float = 1e-3
    dt: float = 1e-6
    #: Integration method: "trap", "be", "bdf2", "gear", or a custom
    #: :class:`~repro.circuits.integration.IntegrationMethod` instance.
    method: object = "trap"
    #: Start from DC operating point (False: start from ICs / zeros).
    use_dc_operating_point: bool = True
    newton: NewtonOptions = field(default_factory=NewtonOptions)
    #: Record every n-th step (1 = all).  In adaptive mode the stride
    #: counts *accepted* steps.
    record_stride: int = 1
    #: Node names to record (None = every unknown, including branch
    #: currents).  Campaigns that consume two traces stop paying for
    #: the full state vector.
    record_nodes: Optional[Sequence[str]] = None
    #: Jacobian strategy: "auto" picks the fastest exact-Newton path,
    #: "full" forces per-iteration assembly + solve, "chord" reuses a
    #: frozen LU factorization and refactors only when Newton slows.
    jacobian: str = "auto"
    #: Linear-algebra backend: "auto" picks dense below the unknown-
    #: count threshold of :mod:`~repro.circuits.backend` and sparse
    #: (CSR + splu) at or above it; "dense"/"sparse" (or a
    #: MatrixBackend instance) force the choice.
    backend: object = "auto"
    #: Chord mode: refactor when an iteration shrinks the update by
    #: less than this factor (1.0 would demand monotone convergence).
    chord_refactor_ratio: float = 0.5

    # -- integration-method knobs -------------------------------------------
    #: Variable-order methods only (``method="gear"``): whether the
    #: adaptive controller moves the target order up and down on the
    #: LTE machinery.  ``None`` means "on when the method spans more
    #: than one order"; fixed-order methods ignore it.
    order_control: Optional[bool] = None
    #: ``method="gear"`` only: highest BDF order the run may reach
    #: (1-3; default 2 — order 3 is stiffly stable but not A-stable,
    #: so it is an explicit opt-in for strongly damped problems).
    max_order: Optional[int] = None

    # -- step control ------------------------------------------------------
    #: "fixed" integrates on the uniform grid t_k = k*dt; "adaptive"
    #: lets a StepController pick each step by LTE, with ``dt`` as the
    #: initial step size.
    step_control: str = "fixed"
    #: Adaptive: smallest/largest step the controller may take.
    #: Defaults: ``dt/256`` and ``dt*16``.
    dt_min: Optional[float] = None
    dt_max: Optional[float] = None
    #: Adaptive: LTE tolerance — a step is accepted when the estimated
    #: local error of the node voltages is below
    #: ``lte_abstol + lte_reltol * |x|_inf``.
    lte_reltol: float = 1e-3
    lte_abstol: float = 1e-6
    #: Adaptive: controller safety factor and per-step growth clamp.
    lte_safety: float = 0.9
    max_step_growth: float = 2.0
    #: Adaptive: extra forced step boundaries (source discontinuities
    #: are collected automatically from the netlist).
    breakpoints: Optional[Sequence[float]] = None
    #: Adaptive: objects whose known event times become forced step
    #: boundaries too — anything exposing ``breakpoints(t_stop)``,
    #: e.g. an :class:`~repro.digital.events.EventScheduler`, a
    #: :class:`~repro.digital.watchdog.WatchdogTimer`, or a
    #: :class:`~repro.digital.por.PowerOnReset`; mixed-signal
    #: scenarios run adaptively without hand-listing event times.
    breakpoint_sources: Optional[Sequence[object]] = None
    #: Adaptive: per-phase method switching.  A
    #: :class:`~repro.circuits.stepcontrol.PhaseSchedule` partitions
    #: the run at stimulus breakpoints into carrier-resolved phases
    #: (trap, fine dt) and decay/settle phases (Gear, coarse dt); each
    #: phase onset is a forced step boundary at which the engine
    #: performs a live ``set_method`` switch with controller rebind
    #: and history reset/bootstrap.  The first phase's method
    #: overrides ``method`` for the whole run's assembly.
    phases: Optional[PhaseSchedule] = None
    #: Adaptive: how many per-dt assembly/factorization cache entries
    #: to keep alive.  The grid between dt_min and dt_max has
    #: log2(dt_max/dt_min) levels; keep the cache at least as deep as
    #: the levels a run actually visits or ladder re-climbs after
    #: breakpoints will rebuild entries.
    dt_cache_size: int = 16

    # -- fault tolerance ----------------------------------------------------
    #: Per-step Newton rescue ladder.  When a step's Newton fails (on
    #: the fixed grid: immediately; on the adaptive grid: after step
    #: shrinking has reached ``dt_min``), the engine escalates through
    #: a per-step gmin ramp and then a residual ("source-ramp")
    #: continuation before giving up — the transient analogue of the
    #: DC solver's homotopy fallbacks.  Off by default so the seed
    #: contract (raise on first hard failure) is opt-out; the healthy
    #: path is bit-identical either way because rescue only ever
    #: engages *after* a ConvergenceError.
    rescue: bool = False
    #: Budget: rescued steps allowed per run before aborting.
    max_rescues: int = 8
    #: Rescue stage 1: descending extra node-to-ground conductances;
    #: each rung's solution warm-starts the next, and a final rung at
    #: the nominal gmin recovers the true step equations.
    rescue_gmin_ladder: Sequence[float] = (1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10)
    #: Rescue stage 2: number of residual-continuation waypoints on
    #: the way from "previous state satisfies the step equations" to
    #: the true step system.
    rescue_ramp_steps: int = 8
    #: Budgets: cap on attempted steps (fixed: grid steps; adaptive:
    #: proposed candidates) and wall-clock seconds.  None = unlimited.
    max_steps: Optional[int] = None
    max_wall_time: Optional[float] = None
    #: What to do when the run cannot continue — Newton dead at the
    #: dt floor after any rescue, adaptive LTE underflow, or an
    #: exhausted budget.  "raise" propagates the error (the seed
    #: behaviour); "partial" returns the waveform integrated so far
    #: with ``stats["abort_reason"]`` and ``stats["t_abort"]`` set.
    on_abort: str = "raise"
    #: Batched lockstep engine only: mask a sample whose Newton
    #: exhausts escalation out of the batch (state frozen, flagged in
    #: its stats) so the remaining samples finish, instead of one
    #: pathological sample killing the whole campaign.
    quarantine: bool = False

    # -- numerical health ---------------------------------------------------
    #: Preflight netlist lint before any stamping: "off" (default),
    #: "warn" (one PreflightWarning per finding), or "raise" (abort
    #: on error-severity findings with PreflightError).  Findings land
    #: in ``stats["preflight"]`` either way.
    preflight: str = "off"
    #: Runtime NaN/Inf + conditioning guards.  A non-finite step
    #: solution raises a ``phase="health"`` ConvergenceError — routed
    #: through the rescue ladder / quarantine machinery like any other
    #: Newton death — and each cached factorization gets a one-time
    #: 1-norm condition estimate (violations become warning
    #: HealthReports).  Guards only *read* solver state, so healthy
    #: armed runs are bit-identical to unarmed runs.
    guards: bool = False
    #: Post-step certification: recompute each accepted step's
    #: residual ||F(x)||, spot-check reactive charge/flux consistency
    #: after commit, and enforce time-grid invariants at the end of
    #: the run.  Violations become HealthReport entries in
    #: ``stats["health"]``.  Pure recomputation — never mutates the
    #: accepted solution — so armed healthy runs stay bit-identical.
    certify: bool = False
    #: Condition-estimate threshold for the ``guards`` conditioning
    #: check (and per-sample quarantine in the batched engine).
    condition_limit: float = CONDITION_LIMIT
    #: Relative residual tolerance of the ``certify`` check (on top of
    #: the Newton-tolerance floor the accepted iterate legitimately
    #: carries).
    certify_rtol: float = 1e-6

    def __post_init__(self) -> None:
        if self.t_stop <= 0 or self.dt <= 0:
            raise SimulationError("t_stop and dt must be positive")
        if self.dt >= self.t_stop:
            raise SimulationError("dt must be smaller than t_stop")
        if (
            not isinstance(self.method, IntegrationMethod)
            and self.method not in KNOWN_METHODS
        ):
            raise SimulationError(f"unknown method {self.method!r}")
        if self.max_order is not None:
            if self.method != "gear":
                raise SimulationError(
                    "max_order applies to method='gear' only"
                )
            if not 1 <= self.max_order <= 3:
                raise SimulationError("max_order must be 1..3")
        if self.record_stride < 1:
            raise SimulationError("record_stride must be >= 1")
        if self.jacobian not in ("auto", "full", "chord"):
            raise SimulationError(f"unknown jacobian mode {self.jacobian!r}")
        if not isinstance(self.backend, MatrixBackend) and self.backend not in (
            "auto",
            "dense",
            "sparse",
            "krylov",
        ):
            raise SimulationError(f"unknown backend {self.backend!r}")
        if not 0.0 < self.chord_refactor_ratio <= 1.0:
            raise SimulationError("chord_refactor_ratio must be in (0, 1]")
        if self.step_control not in ("fixed", "adaptive"):
            raise SimulationError(
                f"unknown step_control mode {self.step_control!r}"
            )
        if self.dt_min is not None and self.dt_min <= 0:
            raise SimulationError("dt_min must be positive")
        if self.dt_max is not None and self.dt_max <= 0:
            raise SimulationError("dt_max must be positive")
        if (
            self.dt_min is not None
            and self.dt_max is not None
            and self.dt_min > self.dt_max
        ):
            raise SimulationError("dt_min must not exceed dt_max")
        if self.lte_reltol <= 0 or self.lte_abstol <= 0:
            raise SimulationError("lte_reltol and lte_abstol must be positive")
        if not 0.0 < self.lte_safety <= 1.0:
            raise SimulationError("lte_safety must be in (0, 1]")
        if self.max_step_growth <= 1.0:
            raise SimulationError("max_step_growth must exceed 1")
        if self.dt_cache_size < 1:
            raise SimulationError("dt_cache_size must be >= 1")
        if self.phases is not None:
            if not isinstance(self.phases, PhaseSchedule):
                raise SimulationError(
                    "phases must be a PhaseSchedule instance"
                )
            if self.step_control != "adaptive":
                raise SimulationError(
                    "phases requires step_control='adaptive' (phase "
                    "boundaries are forced adaptive step boundaries)"
                )
        if self.on_abort not in ("raise", "partial"):
            raise SimulationError(
                f"on_abort must be 'raise' or 'partial', got {self.on_abort!r}"
            )
        if self.max_rescues < 0:
            raise SimulationError("max_rescues must be >= 0")
        if self.rescue_ramp_steps < 1:
            raise SimulationError("rescue_ramp_steps must be >= 1")
        if any(g <= 0 for g in self.rescue_gmin_ladder):
            raise SimulationError("rescue_gmin_ladder entries must be positive")
        if self.max_steps is not None and self.max_steps < 1:
            raise SimulationError("max_steps must be >= 1 (or None)")
        if self.max_wall_time is not None and self.max_wall_time <= 0:
            raise SimulationError("max_wall_time must be positive (or None)")
        if self.preflight not in PREFLIGHT_MODES:
            raise SimulationError(
                f"preflight must be one of {PREFLIGHT_MODES}, "
                f"got {self.preflight!r}"
            )
        if self.condition_limit <= 0:
            raise SimulationError("condition_limit must be positive")
        if self.certify_rtol <= 0:
            raise SimulationError("certify_rtol must be positive")

    def resolved_dt_min(self) -> float:
        return self.dt_min if self.dt_min is not None else self.dt / 256.0

    def resolved_dt_max(self) -> float:
        return self.dt_max if self.dt_max is not None else self.dt * 16.0

    def resolved_method(self) -> IntegrationMethod:
        """The integration-method instance this run starts with.

        With a :class:`~repro.circuits.stepcontrol.PhaseSchedule` the
        first phase decides (later phases switch the live assembly).
        """
        if self.phases is not None:
            return self.phases.initial_phase.resolved_method()
        return resolve_method(self.method, max_order=self.max_order)

    def resolved_order_control(self, method: IntegrationMethod) -> bool:
        if self.order_control is None:
            return method.max_order > method.min_order
        return bool(self.order_control)


@dataclass
class TransientResult:
    """Recorded node voltages (and branch currents) over time.

    ``t`` is uniform in fixed-step mode and non-uniform in adaptive
    mode; every consumer downstream (Waveform calculus, measurements,
    envelope extraction) handles both.  With ``record_nodes`` the
    column space shrinks to the requested node voltages; asking for
    anything that was not recorded raises
    :class:`~repro.errors.SimulationError` rather than guessing.
    """

    circuit: Circuit
    t: np.ndarray
    x: np.ndarray  # shape (n_samples, n_recorded_columns)
    #: Column names when a ``record_nodes`` subset was recorded.
    recorded_nodes: Optional[Tuple[str, ...]] = None
    #: Engine diagnostics: strategy, Newton iteration totals, LU
    #: refactorization count, accepted/rejected step counts (adaptive).
    stats: Dict[str, object] = field(default_factory=dict)

    def _column(self, node: str) -> Optional[int]:
        """Recorded column for a node; None means ground (zero trace)."""
        if node in GROUND_NAMES:
            return None
        if self.recorded_nodes is not None:
            try:
                return self.recorded_nodes.index(node)
            except ValueError:
                raise SimulationError(
                    f"node {node!r} was not recorded; record_nodes="
                    f"{list(self.recorded_nodes)}"
                ) from None
        try:
            idx = self.circuit.node_index(node)
        except NetlistError:
            raise SimulationError(
                f"unknown node {node!r}; known nodes: "
                f"{list(self.circuit.node_names)}"
            ) from None
        return idx if idx >= 0 else None

    def waveform(self, node: str) -> Waveform:
        column = self._column(node)
        if column is None:
            y = np.zeros_like(self.t)
        else:
            y = self.x[:, column]
        return Waveform(self.t, y, name=node)

    def differential(self, node_p: str, node_n: str) -> Waveform:
        wp = self.waveform(node_p)
        wn = self.waveform(node_n)
        return Waveform(self.t, wp.y - wn.y, name=f"{node_p}-{node_n}")

    def branch_current(self, component_name: str) -> Waveform:
        component = self.circuit[component_name]
        branches = component.branch_indices
        if not branches:
            raise SimulationError(f"{component_name} has no branch current")
        if self.recorded_nodes is not None:
            raise SimulationError(
                "branch currents are not available when record_nodes "
                "restricts recording to node voltages"
            )
        return Waveform(self.t, self.x[:, branches[0]], name=f"i({component_name})")


class _RecordingBuffer:
    """Growable ``(t, x)`` recording that finalizes into result arrays.

    Fixed-step runs preallocate their exact record count and never
    grow; adaptive runs start from a capacity guess and double as
    accepted steps accumulate, so recording stays amortized O(1) per
    step with no per-step Python list overhead.
    """

    def __init__(
        self,
        n_columns: int,
        capacity: int,
        record_indices: Optional[np.ndarray],
    ):
        capacity = max(int(capacity), 4)
        self._t = np.empty(capacity)
        self._x = np.empty((capacity, n_columns))
        self._indices = record_indices
        self._n = 0

    def append(self, time: float, x: np.ndarray) -> None:
        if self._n == self._t.size:
            new_capacity = self._t.size * 2
            self._t = np.concatenate([self._t, np.empty(self._t.size)])
            grown = np.empty((new_capacity, self._x.shape[1]))
            grown[: self._n] = self._x
            self._x = grown
        self._t[self._n] = time
        self._x[self._n] = x if self._indices is None else x[self._indices]
        self._n += 1

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._n == self._t.size:
            return self._t, self._x
        return self._t[: self._n].copy(), self._x[: self._n].copy()


def _voltage_tol(x: np.ndarray, n_nodes: int, options: NewtonOptions) -> float:
    return options.abstol_v + options.reltol * float(np.abs(x[:n_nodes]).max())


class _RunAbort(Exception):
    """Internal control flow: the run cannot continue.

    Carries the machine-readable reason, the underlying error (when
    the abort was a solver failure rather than a budget), and the
    loop's partial stats.  :func:`run_transient` translates it per
    ``options.on_abort``: re-raise the real error, or finalize the
    recording made so far into a partial result.
    """

    def __init__(
        self,
        reason: str,
        error: Optional[BaseException] = None,
        stats: Optional[Dict[str, object]] = None,
    ):
        super().__init__(reason)
        self.reason = reason
        self.error = error
        self.stats = stats or {}


class _RunBudget:
    """Step / wall-clock budget charged once per attempted step.

    Only constructed when a limit is actually set, so budget-free runs
    pay nothing; the wall clock is read only when a deadline exists.
    """

    __slots__ = ("max_steps", "deadline", "steps")

    def __init__(self, options: TransientOptions):
        self.max_steps = options.max_steps
        self.deadline = (
            time_module.monotonic() + options.max_wall_time
            if options.max_wall_time is not None
            else None
        )
        self.steps = 0

    @classmethod
    def for_options(cls, options: TransientOptions) -> Optional["_RunBudget"]:
        if options.max_steps is None and options.max_wall_time is None:
            return None
        return cls(options)

    def charge(self) -> Optional[str]:
        """Account one attempted step; the exhausted budget's name or None."""
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            return "max_steps"
        if self.deadline is not None and time_module.monotonic() > self.deadline:
            return "max_wall_time"
        return None


class _StepRescue:
    """Per-step Newton rescue ladder: gmin ramp, then residual ramp.

    The transient analogue of ``solve_dc``'s homotopy fallbacks,
    applied to *one step's* companion-model equations after plain
    Newton (every fast path plus its own fallbacks) has failed:

    1. **Gmin ramp** — damped Newton with a large extra conductance
       from every node to ground, tightened rung by rung down
       ``rescue_gmin_ladder`` (each rung warm-starting the next) and
       finishing at the nominal gmin, which *is* the true step system.
    2. **Residual ("source-ramp") continuation** — solve
       ``F(x) - (1 - lam) * F(x_prev) = 0`` along a ``lam`` ladder
       from near 0 to 1.  At small ``lam`` the previous state is
       almost a solution by construction; at ``lam = 1`` the offset
       vanishes and the true step system is recovered.  Since the
       step residual at ``x_prev`` is dominated by the stimulus and
       companion-source change over the step, this ramps the step's
       forcing in gradually — source stepping without needing a
       per-component scale hook.

    Both ladders share :func:`~repro.circuits.dcop.continuation_ladder`
    with the DC solver.  All solves are damped dense Newton against
    :meth:`~repro.circuits.assembly.TransientAssembly.assemble_dense`
    — rescue is rare by construction, so generality beats speed here,
    and none of this code runs (or allocates) on a healthy step.
    """

    def __init__(self, assembly: TransientAssembly, options: TransientOptions):
        self.assembly = assembly
        self.options = options
        self.newton = options.newton
        self.rescues = 0
        self.by_stage: Dict[str, int] = {}

    # -- one damped dense Newton solve ------------------------------------

    def _solve(
        self,
        x0: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
        extra_gmin: float = 0.0,
        rhs_offset: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, int]:
        options = self.newton
        assembly = self.assembly
        n_nodes = assembly.n_nodes
        x = x0.copy()
        last_delta = np.inf
        for iteration in range(options.max_iterations):
            G, rhs = assembly.assemble_dense(
                x, rhs_lin, time, states, extra_gmin=extra_gmin
            )
            if rhs_offset is not None:
                rhs = rhs + rhs_offset
            x_new = solve_dense(G, rhs)
            delta, last_delta = damp_voltage_delta(
                x_new - x, n_nodes, options.max_step
            )
            x = x + delta
            if last_delta < _voltage_tol(x, n_nodes, options):
                return x, iteration + 1
        raise ConvergenceError(
            f"rescue Newton failed at t={time:.4e}",
            iterations=options.max_iterations,
            residual=last_delta,
            time=time,
            dt=assembly.dt,
            phase="rescue",
        )

    def _residual(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        G, rhs = self.assembly.assemble_dense(x, rhs_lin, time, states)
        return G.dot(x) - rhs

    # -- the ladder -------------------------------------------------------

    def rescue(
        self,
        x_prev: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        """Solve one step's equations that plain Newton gave up on.

        Returns the converged solution of the *unmodified* step system
        (both ladders end at the nominal equations); raises the last
        stage's :class:`~repro.errors.ConvergenceError` when every
        ladder fails.
        """
        hook = self.newton.fail_hook
        if hook is not None and hook(time, "rescue", self.assembly.circuit):
            raise ConvergenceError(
                f"injected rescue failure at t={time:.4e}",
                time=time,
                dt=self.assembly.dt,
                phase="rescue",
            )
        self.rescues += 1
        try:
            x, _ = continuation_ladder(
                lambda gmin, xw: self._solve(
                    xw, rhs_lin, time, states, extra_gmin=gmin
                ),
                tuple(self.options.rescue_gmin_ladder) + (0.0,),
                x_prev,
            )
            self.by_stage["gmin_ramp"] = self.by_stage.get("gmin_ramp", 0) + 1
            return x
        except ConvergenceError:
            pass
        f0 = self._residual(x_prev, rhs_lin, time, states)
        m = self.options.rescue_ramp_steps
        x, _ = continuation_ladder(
            lambda lam, xw: self._solve(
                xw, rhs_lin, time, states, rhs_offset=(1.0 - lam) * f0
            ),
            [k / m for k in range(1, m + 1)],
            x_prev,
        )
        self.by_stage["source_ramp"] = self.by_stage.get("source_ramp", 0) + 1
        return x


class _Certifier:
    """Post-step certification: recompute what the solver claimed.

    ``check_step`` re-assembles the accepted step's *dense* system at
    the converged iterate and certifies ``||G x - rhs||_inf`` against
    a threshold that allows what an accepted Newton iterate
    legitimately carries (``~||G||_inf`` times the voltage tolerance)
    plus a relative ``certify_rtol`` margin; ``check_state`` verifies
    the committed reactive charge/flux state is finite and consistent
    with the committed node voltages / branch currents.  Violations
    become :class:`~repro.circuits.health.HealthReport` entries —
    certification only ever *reads*, so the accepted waveform is
    bit-identical with or without it.
    """

    def __init__(
        self,
        assembly: TransientAssembly,
        options: TransientOptions,
        health: list,
    ):
        self.assembly = assembly
        self.newton = options.newton
        self.rtol = options.certify_rtol
        self.health = health
        self.checked = 0
        size = assembly.circuit.size
        self._size = size
        self._xp = np.zeros(size + 1)

    def check_step(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> None:
        """Certify the residual of the (pre-commit) accepted step."""
        self.checked += 1
        assembly = self.assembly
        G, rhs = assembly.assemble_dense(x, rhs_lin, time, states)
        gx = G.dot(x)
        residual = float(np.abs(gx - rhs).max()) if gx.size else 0.0
        n = assembly.n_nodes
        x_v = x[:n]
        tol_v = self.newton.abstol_v + self.newton.reltol * (
            float(np.abs(x_v).max()) if x_v.size else 0.0
        )
        norm_g = float(np.abs(G).sum(axis=1).max()) if G.size else 0.0
        scale = max(float(np.abs(gx).max()), float(np.abs(rhs).max()), 1e-30)
        threshold = 10.0 * norm_g * tol_v + self.rtol * scale
        if not np.isfinite(residual) or residual > threshold:
            self.health.append(
                HealthReport(
                    "residual",
                    f"accepted-step residual {residual:.3e} exceeds the "
                    f"certification threshold {threshold:.3e} at "
                    f"t={time:.4e}",
                    time=time,
                    value=residual,
                )
            )

    def check_state(self, x: np.ndarray, time: float) -> None:
        """Charge/flux spot-check of the committed reactive state."""
        reactive = self.assembly.reactive
        if not reactive.n:
            return
        v, i = reactive.v, reactive.i
        if not (np.isfinite(v).all() and np.isfinite(i).all()):
            self.health.append(
                HealthReport(
                    "state",
                    f"non-finite reactive integrator state at t={time:.4e}",
                    time=time,
                )
            )
            return
        xp = self._xp
        xp[: self._size] = x
        v_expected = xp[reactive.a_idx] - xp[reactive.b_idx]
        tol = 1e-12 * (1.0 + float(np.abs(v_expected).max(initial=0.0)))
        if float(np.abs(v - v_expected).max(initial=0.0)) > tol:
            self.health.append(
                HealthReport(
                    "state",
                    "reactive charge state disagrees with committed node "
                    f"voltages at t={time:.4e}",
                    time=time,
                )
            )
            return
        if reactive.br_idx.size:
            i_br = x[reactive.br_idx]
            itol = 1e-12 * (1.0 + float(np.abs(i_br).max(initial=0.0)))
            drift = float(
                np.abs(i[reactive.n_caps :] - i_br).max(initial=0.0)
            )
            if drift > itol:
                self.health.append(
                    HealthReport(
                        "state",
                        "inductor flux state disagrees with committed "
                        f"branch currents at t={time:.4e}",
                        time=time,
                        value=drift,
                    )
                )

    def check_grid(
        self, times: np.ndarray, options: TransientOptions
    ) -> None:
        """Time-grid invariants of the finished recording."""
        check_grid_invariants(times, options.t_stop, self.health)


class _StepSolver:
    """Per-run solver state shared across steps (caches, statistics).

    All ``(dt, method)``-dependent solve data (base matrix, cached
    factorization, rank-k vectors) lives in the assembly's active
    per-``dt`` cache entry, so a step-size change by the adaptive
    controller transparently switches every strategy to the right
    cached factorization.
    """

    def __init__(
        self,
        assembly: TransientAssembly,
        options: NewtonOptions,
        jacobian: str,
        chord_refactor_ratio: float,
        guards: bool = False,
        condition_limit: float = CONDITION_LIMIT,
        health: Optional[list] = None,
    ):
        self.assembly = assembly
        self.options = options
        self.n_nodes = assembly.n_nodes
        self.newton_iterations = 0
        self.chord_refactor_ratio = chord_refactor_ratio
        self.guards = guards
        self.condition_limit = condition_limit
        self.health = health if health is not None else []
        self._cond_checked: set = set()
        self._condest_skip_noted = False

        devices = assembly.rankk_devices()
        if assembly.is_linear:
            self.strategy = "linear"
        elif not assembly.circuit.has_nonlinear():
            # Linear circuit containing components that did not opt
            # into the stamp split (their stamps may vary with time):
            # one fresh assembly and one undamped solve per step, the
            # seed engine's exact linear behaviour.
            self.strategy = "linear-restamp"
        elif jacobian == "chord":
            self.strategy = "chord"
        elif devices is not None and jacobian == "auto":
            if len(devices) == 1:
                self.strategy = "rank1"
                self._device = devices[0]
                op, on, cp, cn = self._device._n
                self._cp, self._cn = cp, cn
            else:
                self.strategy = "woodbury"
                self._devices = devices
                self._eye_k = np.eye(len(devices))
        else:
            self.strategy = "general"

    def _ctrl_diff(self, vec: np.ndarray) -> float:
        cp, cn = self._cp, self._cn
        value = vec[cp] if cp >= 0 else 0.0
        if cn >= 0:
            value = value - vec[cn]
        return float(value)

    def _full_solve(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        """One fully-stamped linearized solve at iterate ``x``.

        Dense backend: copy the cached parts, restamp the full-stamp
        components, one dense solve (the historical path, bit-pinned).
        Sparse backend: the same equations via the assembly's low-rank
        delta update around the cached sparse LU — no refactorization.
        """
        assembly = self.assembly
        if assembly.backend.is_dense:
            G, rhs = assembly.assemble(x, rhs_lin, time, states)
            return solve_dense(G, rhs)
        return assembly.delta_solve(x, rhs_lin, time, states)

    @property
    def lu_refactorizations(self) -> int:
        return self.assembly.lu_factorizations

    # -- one time step ------------------------------------------------------

    def step(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        hook = self.options.fail_hook
        if hook is not None and hook(time, "step", self.assembly.circuit):
            raise self._fail(time, float("inf"))
        if self.guards:
            self._guard_conditioning(time)
        if self.strategy == "linear":
            x_new = self.assembly.lu().solve(rhs_lin)
        elif self.strategy == "linear-restamp":
            self.newton_iterations += 1
            x_new = self._full_solve(x, rhs_lin, time, states)
        elif self.strategy == "rank1":
            x_new = self._step_rank1(x, rhs_lin, time, states)
        elif self.strategy == "woodbury":
            x_new = self._step_woodbury(x, rhs_lin, time, states)
        elif self.strategy == "chord":
            x_new = self._step_chord(x, rhs_lin, time, states)
        else:
            x_new = self._step_general(x, rhs_lin, time, states)
        if self.guards and not np.isfinite(x_new).all():
            raise ConvergenceError(
                f"non-finite step solution at t={time:.4e}",
                time=time,
                dt=self.assembly.dt,
                phase="health",
            )
        return x_new

    def _guard_conditioning(self, time: float) -> None:
        """One-time condition estimate of each cached factorization.

        Only the strategies that already materialize the cached LU are
        checked — estimating conditioning must never *cause* a
        factorization the unarmed run would not perform.  Findings are
        warnings: the dense/sparse factorizations degrade gracefully
        (least-squares fallbacks), so an ill-conditioned scalar run is
        flagged, not killed.

        Backends with no direct factorization of the active matrix —
        the Krylov backend's solvers answer iteratively against a
        stale preconditioner — cannot provide an estimate; the guard
        degrades gracefully (NaN/Inf screening of every step stays
        armed) and records the skip once in ``stats["health"]``.
        """
        if self.strategy not in ("linear", "rank1", "woodbury"):
            return
        lu = self.assembly.lu()
        key = id(lu)
        if key in self._cond_checked:
            return
        self._cond_checked.add(key)
        condest = getattr(lu, "condest", None)
        if condest is None:
            if not self._condest_skip_noted:
                self._condest_skip_noted = True
                self.health.append(
                    HealthReport(
                        "condest_skipped",
                        "condition estimation skipped: backend "
                        f"{self.assembly.backend.name!r} keeps no direct "
                        "factorization of the active matrix; NaN/Inf "
                        "screening stays armed",
                        severity="info",
                        time=time,
                    )
                )
            return
        value = condest()
        if not np.isfinite(value) or value > self.condition_limit:
            self.health.append(
                HealthReport(
                    "ill_conditioned",
                    f"cached factorization condition estimate {value:.3e} "
                    f"exceeds limit {self.condition_limit:.1e} "
                    f"(first used at t={time:.4e})",
                    severity="warning",
                    time=time,
                    value=float(value),
                )
            )

    def _fail(self, time: float, residual: float) -> ConvergenceError:
        return ConvergenceError(
            f"transient Newton failed at t={time:.4e}",
            iterations=self.options.max_iterations,
            residual=residual,
            time=time,
            dt=self.assembly.dt,
            phase="step",
        )

    def _step_general(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        options = self.options
        last_delta = np.inf
        for _iteration in range(options.max_iterations):
            x_new = self._full_solve(x, rhs_lin, time, states)
            self.newton_iterations += 1
            delta, last_delta = damp_voltage_delta(
                x_new - x, self.n_nodes, options.max_step
            )
            x = x + delta
            if last_delta < _voltage_tol(x, self.n_nodes, options):
                return x
        raise self._fail(time, last_delta)

    def _step_rank1(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        """Sherman–Morrison Newton around the cached base factorization.

        The Jacobian is always ``G_base + gm*u@v.T``, so every Newton
        solve collapses to ``x_new = z_lin - q*w`` with cached vectors
        ``z_lin`` (once per step) and ``w`` (once per step size), and
        a scalar ``q`` from the device linearization.  Once an
        undamped iterate lands exactly on that line, the remaining
        iterations — update, damping, convergence test — reduce to
        *scalar* arithmetic; the solution vector is materialized once
        at convergence.
        """
        options = self.options
        linearize = self._device.linearize
        w, vw, w_vmax = self.assembly.rank1_data()
        n = self.n_nodes
        max_step = options.max_step
        z_lin = self.assembly.lu().solve(rhs_lin)
        zl_c = self._ctrl_diff(z_lin)
        x_v = x[:n]
        tol = options.abstol_v + options.reltol * (
            float(np.abs(x_v).max()) if x_v.size else 0.0
        )
        v_ctrl = self._ctrl_diff(x)
        on_line = False  # is x exactly z_lin - c*w?
        c = 0.0
        last_delta = np.inf
        for _iteration in range(options.max_iterations):
            gm, i_eq = linearize(v_ctrl)
            denom = 1.0 + gm * vw
            self.newton_iterations += 1
            if abs(denom) < 1e-12:
                # Jacobian momentarily singular along the rank-1
                # direction; fall back to a dense solve.
                if on_line:
                    x = z_lin - c * w
                    on_line = False
                x_new = self._full_solve(x, rhs_lin, time, states)
                delta, last_delta = damp_voltage_delta(
                    x_new - x, n, options.max_step
                )
                x = x + delta
                v_ctrl = self._ctrl_diff(x)
                if last_delta < tol:
                    return x
                continue
            q = i_eq + gm * (zl_c - i_eq * vw) / denom
            if on_line:
                last_delta = abs(c - q) * w_vmax
                if last_delta > max_step:
                    c = c + (max_step / last_delta) * (q - c)
                    last_delta = max_step
                else:
                    c = q
                v_ctrl = zl_c - c * vw
                if last_delta < tol:
                    return z_lin - c * w
            else:
                x_new = z_lin - q * w
                delta, last_delta = damp_voltage_delta(x_new - x, n, max_step)
                if last_delta == max_step:  # damped: stays off the line
                    x = x + delta
                    v_ctrl = self._ctrl_diff(x)
                else:
                    x = x_new
                    on_line = True
                    c = q
                    v_ctrl = zl_c - c * vw
                if last_delta < tol:
                    return x
        raise self._fail(time, last_delta)

    def _step_woodbury(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        """Rank-k Newton via the Woodbury identity.

        With ``k`` NonlinearVCCS devices the Jacobian is
        ``G_base + U diag(gm) V^T`` with constant ``U, V``; each
        iterate costs one cached triangular solve reuse
        (``z_lin``, once per step), a few ``(size, k)`` mat-vecs and
        one ``k×k`` dense solve — no LAPACK factorization and no
        matrix assembly in the loop.
        """
        options = self.options
        assembly = self.assembly
        devices = self._devices
        k = len(devices)
        n = self.n_nodes
        lu = assembly.lu()
        WU, VWU = assembly.woodbury_data()
        z_lin = lu.solve(rhs_lin)
        gms = np.empty(k)
        ieqs = np.empty(k)
        v_ctrl = assembly.ctrl_project(x)
        last_delta = np.inf
        for _iteration in range(options.max_iterations):
            for j, device in enumerate(devices):
                gms[j], ieqs[j] = device.linearize(v_ctrl[j])
            self.newton_iterations += 1
            Wb = z_lin - WU.dot(ieqs)
            VWb = assembly.ctrl_project(Wb)
            M = self._eye_k + VWU * gms[np.newaxis, :]
            try:
                s = np.linalg.solve(M, VWb)
                x_new = Wb - WU.dot(gms * s)
            except np.linalg.LinAlgError:
                # Small matrix momentarily singular along the rank-k
                # directions; fall back to a fully-stamped solve.
                x_new = self._full_solve(x, rhs_lin, time, states)
            delta, last_delta = damp_voltage_delta(
                x_new - x, n, options.max_step
            )
            x = x + delta
            v_ctrl = assembly.ctrl_project(x)
            if last_delta < _voltage_tol(x, n, options):
                return x
        raise self._fail(time, last_delta)

    def _step_chord(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        """Frozen-Jacobian Newton with refactor-on-slow-convergence.

        The frozen LU lives in the active per-``dt`` cache entry, so
        an adaptive run alternating between a step size and its half
        keeps one consistent Jacobian per size instead of thrashing a
        single slot.
        """
        options = self.options
        lu = self.assembly.chord_lu()
        last_delta = np.inf
        previous_delta = np.inf
        for _iteration in range(options.max_iterations):
            G, rhs = self.assembly.assemble(x, rhs_lin, time, states)
            if not lu.is_factored:
                lu.factor(G)
            residual = G.dot(x) - rhs
            dx = -lu.solve(residual)
            self.newton_iterations += 1
            delta, last_delta = damp_voltage_delta(
                dx, self.n_nodes, options.max_step
            )
            x = x + delta
            if last_delta < _voltage_tol(x, self.n_nodes, options):
                return x
            if last_delta > self.chord_refactor_ratio * previous_delta:
                # Convergence stalled: the frozen Jacobian has drifted
                # too far from the current linearization — refresh it.
                lu.factor(G)
                previous_delta = np.inf
            else:
                previous_delta = last_delta
        raise self._fail(time, last_delta)


def _fixed_record_count(options: TransientOptions) -> int:
    """Records a fixed-grid run produces (initial sample included).

    Shared by the per-sample engine, the batched lockstep engine, and
    the shared-memory campaign streamer, whose preallocated block
    shape must agree with the engines' recording cadence exactly.
    """
    n_steps = int(round(options.t_stop / options.dt))
    return n_steps // options.record_stride + 1


def _resolve_recording(
    circuit: Circuit, options: TransientOptions
) -> Tuple[Optional[np.ndarray], Optional[Tuple[str, ...]], int]:
    """Validate ``record_nodes`` into gather indices and column count."""
    record_indices: Optional[np.ndarray] = None
    recorded_nodes: Optional[Tuple[str, ...]] = None
    if options.record_nodes is not None:
        recorded_nodes = tuple(options.record_nodes)
        indices = []
        for name in recorded_nodes:
            idx = circuit.node_index(name)  # unknown name -> NetlistError
            if idx < 0:
                raise SimulationError(
                    f"cannot record ground node {name!r}; it is 0 V by "
                    "definition"
                )
            indices.append(idx)
        record_indices = np.asarray(indices, dtype=np.intp)
    n_columns = circuit.size if record_indices is None else len(record_indices)
    return record_indices, recorded_nodes, n_columns


def _run_fixed(
    options: TransientOptions,
    assembly: TransientAssembly,
    solver: _StepSolver,
    states: Dict[str, object],
    x: np.ndarray,
    recorder: _RecordingBuffer,
    certifier: Optional[_Certifier] = None,
) -> Dict[str, object]:
    """The classic uniform grid: t_k = k*dt, every step accepted.

    Multistep methods ramp their order with the committed history
    (the Gear startup policy: first step at order 1, and so on), so
    the same loop serves trap/BE and BDF/Gear; the one-step path
    stays free of any order bookkeeping.
    """
    n_steps = int(round(options.t_stop / options.dt))
    stride = options.record_stride
    recorder.append(0.0, x)
    method = assembly.method
    multistep = method.is_multistep
    target = method.max_order
    order_histogram: Dict[int, int] = {}
    budget = _RunBudget.for_options(options)
    rescue = _StepRescue(assembly, options) if options.rescue else None

    def partial_stats(step: int) -> Dict[str, object]:
        stats: Dict[str, object] = {"steps": step - 1, "t_abort": (step - 1) * options.dt}
        if multistep:
            stats["order_histogram"] = order_histogram
        if rescue is not None:
            stats["rescues"] = rescue.rescues
            stats["rescue_stages"] = dict(rescue.by_stage)
        return stats

    for step in range(1, n_steps + 1):
        time = step * options.dt
        if budget is not None:
            exhausted = budget.charge()
            if exhausted is not None:
                raise _RunAbort(exhausted, stats=partial_stats(step))
        if multistep:
            order = method.usable_order(target, assembly.history_points)
            if order != assembly.order:
                assembly.set_dt(options.dt, order=order)
            order_histogram[order] = order_histogram.get(order, 0) + 1
        rhs_lin = assembly.step_rhs(time, states, x)
        try:
            x = solver.step(x, rhs_lin, time, states)
        except ConvergenceError as exc:
            health_failure = getattr(exc, "phase", None) == "health"
            if rescue is None:
                if health_failure:
                    raise _RunAbort(
                        "health", error=exc, stats=partial_stats(step)
                    )
                raise
            if rescue.rescues >= options.max_rescues:
                raise _RunAbort("max_rescues", error=exc, stats=partial_stats(step))
            try:
                x = rescue.rescue(x, rhs_lin, time, states)
            except ConvergenceError as rescue_exc:
                raise _RunAbort(
                    "health" if health_failure else "newton",
                    error=rescue_exc,
                    stats=partial_stats(step),
                )
        if certifier is not None:
            certifier.check_step(x, rhs_lin, time, states)
        assembly.commit(x, time, states)
        if certifier is not None:
            certifier.check_state(x, time)
        if step % stride == 0:
            recorder.append(time, x)
    stats: Dict[str, object] = {"steps": n_steps}
    if multistep:
        stats["order_histogram"] = order_histogram
    if rescue is not None:
        stats["rescues"] = rescue.rescues
        stats["rescue_stages"] = dict(rescue.by_stage)
    return stats


def _apply_phase(
    assembly: TransientAssembly,
    controller: StepController,
    phase: Phase,
) -> None:
    """Perform one live phase switch at an exact phase boundary.

    Switches the assembly's integration method (with a history
    bootstrap when the phase asks for one and the target is
    multistep), then rebinds the controller so LTE order, order
    targets, and streak state start fresh for the new phase.  When
    the history was bootstrapped the controller's target order seeds
    at the assembly's post-bootstrap order — full order immediately,
    no startup ramp.
    """
    new_method = phase.resolved_method()
    dt_hint = phase.dt if phase.dt is not None else controller.dt
    bootstrap_dt = (
        float(dt_hint)
        if phase.bootstrap and new_method.is_multistep
        else None
    )
    assembly.set_method(new_method, bootstrap_dt=bootstrap_dt)
    controller.rebind_method(
        new_method,
        dt=phase.dt,
        order=assembly.order if bootstrap_dt is not None else None,
    )


def _run_adaptive(
    circuit: Circuit,
    options: TransientOptions,
    assembly: TransientAssembly,
    solver: _StepSolver,
    states: Dict[str, object],
    x: np.ndarray,
    recorder: _RecordingBuffer,
    certifier: Optional[_Certifier] = None,
) -> Dict[str, object]:
    """LTE-controlled stepping with step-doubling error estimates.

    Each candidate step is solved once at ``dt`` (the probe) and twice
    at ``dt/2``; the Richardson difference decides acceptance and the
    half-step solution — the more accurate of the two — is committed.
    Both step sizes live in the assembly's dt cache, so a revisited
    size performs no assembly or factorization work at all.

    With ``options.phases`` the schedule's onsets join the breakpoint
    list (exact landings) and every accepted step that crosses one
    triggers a live method switch (:func:`_apply_phase`).
    """
    method = assembly.method
    schedule = options.phases
    phase_log: List[Dict[str, object]] = []
    extra_breakpoints = tuple(options.breakpoints or ())
    dt_initial = options.dt
    if schedule is not None:
        first = schedule.restart()
        extra_breakpoints = extra_breakpoints + schedule.boundaries()
        if first.dt is not None:
            dt_initial = first.dt
    controller = StepController(
        t_stop=options.t_stop,
        dt_initial=dt_initial,
        dt_min=options.resolved_dt_min(),
        dt_max=options.resolved_dt_max(),
        method=method,
        reltol=options.lte_reltol,
        abstol=options.lte_abstol,
        safety=options.lte_safety,
        max_growth=options.max_step_growth,
        breakpoints=collect_breakpoints(
            circuit,
            options.t_stop,
            extra_breakpoints,
            sources=options.breakpoint_sources or (),
        ),
        order_control=options.resolved_order_control(method),
    )
    multistep = method.is_multistep
    n_nodes = circuit.n_nodes
    stride = options.record_stride
    recorder.append(0.0, x)
    budget = _RunBudget.for_options(options)
    rescue = _StepRescue(assembly, options) if options.rescue else None

    def abort(reason: str, error: Optional[BaseException] = None) -> _RunAbort:
        stats = controller.stats()
        stats["steps"] = controller.accepted
        stats["dt_cache_entries"] = assembly.n_dt_entries
        stats["t_abort"] = controller.t
        if rescue is not None:
            stats["rescues"] = rescue.rescues
            stats["rescue_stages"] = dict(rescue.by_stage)
        if schedule is not None:
            stats["phase_switches"] = len(phase_log)
            stats["phases"] = list(phase_log)
        return _RunAbort(reason, error=error, stats=stats)

    def maybe_switch_phase(t_now: float) -> None:
        # Phase onsets are registered as breakpoints, so accepted
        # steps land exactly on them; the crossed-breakpoint history
        # reset above runs first, then the switch re-seeds (or
        # bootstraps) history for the incoming method.
        nonlocal multistep
        if schedule is None:
            return
        phase = schedule.advance_to(t_now)
        if phase is None:
            return
        _apply_phase(assembly, controller, phase)
        multistep = assembly.method.is_multistep
        phase_log.append(
            {
                "t": t_now,
                "phase": phase.label(),
                "method": assembly.method.name,
                "order": assembly.order,
                "dt": controller.dt,
                "bootstrapped": bool(
                    phase.bootstrap and assembly.method.is_multistep
                ),
            }
        )

    while not controller.finished:
        t = controller.t
        if budget is not None:
            exhausted = budget.charge()
            if exhausted is not None:
                raise abort(exhausted)
        t_target, dt = controller.propose()
        # The whole candidate (probe + both halves) integrates at one
        # order: the controller's target clamped by committed history.
        order = (
            controller.candidate_order(assembly.history_points)
            if multistep
            else None
        )
        # A breakpoint-truncated step has an arbitrary event-driven
        # size: keep it out of the quantized-grid LRU.
        ephemeral = dt != controller.dt
        snapshot = assembly.snapshot_state(states)
        try:
            # Full-step probe (error reference only).
            assembly.set_dt(dt, ephemeral=ephemeral, order=order)
            rhs_lin = assembly.step_rhs(t_target, states, x)
            x_full = solver.step(x, rhs_lin, t_target, states)
            # Two half steps: the solution the engine keeps.
            half = 0.5 * dt
            t_mid = t + half
            assembly.set_dt(half, ephemeral=ephemeral, order=order)
            rhs_lin = assembly.step_rhs(t_mid, states, x)
            x_mid = solver.step(x, rhs_lin, t_mid, states)
            assembly.commit(x_mid, t_mid, states)
            rhs_lin = assembly.step_rhs(t_target, states, x_mid)
            x_half = solver.step(x_mid, rhs_lin, t_target, states)
        except ConvergenceError as exc:
            assembly.restore_state(snapshot, states)
            health_failure = getattr(exc, "phase", None) == "health"
            # A non-finite solution is not a step-size problem: the
            # same NaN/Inf reappears at any dt, so skip straight to
            # the rescue ladder instead of grinding down to dt_min.
            if not controller.at_dt_floor and not health_failure:
                controller.reject_nonconvergence()
                continue
            # Shrinking is exhausted.  Escalate: rescue the candidate
            # as a single full step at the proposed size (no LTE test
            # — the alternative is losing the run), then abort.
            if rescue is None:
                if health_failure:
                    raise abort("health", error=exc)
                raise
            if rescue.rescues >= options.max_rescues:
                raise abort("max_rescues", error=exc)
            try:
                assembly.set_dt(dt, ephemeral=ephemeral, order=order)
                rhs_lin = assembly.step_rhs(t_target, states, x)
                x_rescued = rescue.rescue(x, rhs_lin, t_target, states)
            except ConvergenceError as rescue_exc:
                assembly.restore_state(snapshot, states)
                raise abort(
                    "health" if health_failure else "newton_dt_min",
                    error=rescue_exc,
                )
            if certifier is not None:
                certifier.check_step(x_rescued, rhs_lin, t_target, states)
            assembly.commit(x_rescued, t_target, states)
            x = x_rescued
            controller.accept(t_target, dt, ratio=1.0)
            if multistep and controller.crossed_breakpoint:
                assembly.reset_history()
            maybe_switch_phase(t_target)
            if controller.accepted % stride == 0:
                recorder.append(t_target, x)
            continue
        ratio = controller.error_ratio(x_full, x_half, n_nodes)
        if ratio <= 1.0:
            if certifier is not None:
                certifier.check_step(x_half, rhs_lin, t_target, states)
            assembly.commit(x_half, t_target, states)
            x = x_half
            if certifier is not None:
                certifier.check_state(x, t_target)
            controller.accept(t_target, dt, ratio)
            if multistep and controller.crossed_breakpoint:
                # Interpolating across the discontinuity would poison
                # the BDF history; restart from the committed point.
                assembly.reset_history()
            maybe_switch_phase(t_target)
            if controller.accepted % stride == 0:
                recorder.append(t_target, x)
        else:
            assembly.restore_state(snapshot, states)
            try:
                controller.reject(ratio)
            except SimulationError as exc:
                # Controller underflow: LTE still failing at dt_min.
                raise abort("step_underflow", error=exc)
    stats = controller.stats()
    stats["steps"] = controller.accepted
    stats["dt_cache_entries"] = assembly.n_dt_entries
    if rescue is not None:
        stats["rescues"] = rescue.rescues
        stats["rescue_stages"] = dict(rescue.by_stage)
    if schedule is not None:
        stats["phase_switches"] = len(phase_log)
        stats["phases"] = list(phase_log)
    return stats


def run_transient(circuit: Circuit, options: Optional[TransientOptions] = None) -> TransientResult:
    """Integrate the circuit from 0 to ``t_stop``.

    The initial condition is the DC operating point (sources evaluated
    at t = 0) unless ``use_dc_operating_point`` is False, in which case
    node voltages start at zero and component ``ic`` values are honored.

    Fault tolerance (all opt-in; the healthy path is bit-identical
    with or without them, and performs zero extra Newton solves):

    * ``rescue=True`` — a step whose Newton fails (fixed grid) or
      fails with the adaptive step already at ``dt_min`` escalates
      through the per-step gmin ramp and residual continuation of
      :class:`_StepRescue` before the run gives up; ``max_rescues``
      bounds the escalations per run.
    * ``max_steps`` / ``max_wall_time`` — hard budgets on attempted
      steps and wall-clock seconds.
    * ``on_abort="partial"`` — when the run cannot continue (Newton
      dead after rescue, LTE underflow, budget exhausted), return the
      waveform integrated so far instead of raising; the result's
      ``stats`` carry ``abort_reason`` (one of ``"newton"``,
      ``"newton_dt_min"``, ``"step_underflow"``, ``"max_rescues"``,
      ``"max_steps"``, ``"max_wall_time"``, ``"health"``), ``t_abort``,
      and ``completed=False``.

    Numerical health (also opt-in; see :mod:`~repro.circuits.health`):

    * ``preflight="warn" | "raise"`` — structural netlist lint before
      any solve; findings land in ``stats["preflight"]``.
    * ``guards=True`` — NaN/Inf screening of every accepted step plus
      one condition estimate per cached factorization; a non-finite
      step raises (or aborts with reason ``"health"``), conditioning
      findings are warnings in ``stats["health"]``.
    * ``certify=True`` — accepted steps are re-verified (residual,
      reactive state consistency, grid invariants); violations land in
      ``stats["health"]``.
    """
    options = options or TransientOptions()
    size = circuit.prepare()
    preflight_diags = apply_preflight(
        circuit, options.preflight, options, analysis="tran"
    )

    backend = resolve_backend(options.backend, size)
    if options.jacobian == "chord" and not backend.is_dense:
        # The chord strategy freezes a fully-stamped dense Jacobian;
        # honour an explicit non-dense request — the "sparse" string
        # or a caller-constructed MatrixBackend instance — with a
        # clear error, and quietly keep "auto" on the always-correct
        # dense path.
        if options.backend in ("sparse", "krylov") or isinstance(
            options.backend, MatrixBackend
        ):
            raise SimulationError(
                "jacobian='chord' requires the dense backend; use "
                "backend='dense' (or 'auto') with chord mode"
            )
        backend = resolve_backend("dense", size)

    # Krylov iteration diagnostics cover this run only, even when the
    # caller shares one stateful backend instance across runs.
    krylov_base = (
        backend.counters() if isinstance(backend, KrylovBackend) else None
    )

    if options.use_dc_operating_point:
        op = solve_dc(circuit, options=options.newton, backend=backend)
        x = op.x.copy()
    else:
        x = np.zeros(circuit.size)

    method = options.resolved_method()
    assembly = TransientAssembly(
        circuit,
        options.dt,
        method,
        options.newton.gmin,
        max_dt_entries=options.dt_cache_size,
        backend=backend,
    )
    assembly.reactive.init_state(x)
    states: Dict[str, object] = {}
    for component in circuit:
        if component.name in assembly.vectorized_names:
            continue
        state = component.init_state(x)
        if state is not None:
            states[component.name] = state
    needs_history = method.is_multistep or (
        options.phases is not None
        and any(
            p.resolved_method().is_multistep for p in options.phases.phases
        )
    )
    if needs_history and states:
        # Generic integrator states are scalar (one previous point);
        # only the vectorized plain-capacitor/inductor path carries
        # the committed history a multistep formula needs.
        raise SimulationError(
            f"method={method.name!r} requires plain Capacitor/Inductor "
            "reactive elements; components "
            f"{sorted(states)} keep generic one-step integrator state"
        )

    health: List[HealthReport] = []
    solver = _StepSolver(
        assembly,
        options.newton,
        options.jacobian,
        options.chord_refactor_ratio,
        guards=options.guards,
        condition_limit=options.condition_limit,
        health=health,
    )
    certifier = (
        _Certifier(assembly, options, health) if options.certify else None
    )

    record_indices, recorded_nodes, n_columns = _resolve_recording(
        circuit, options
    )
    if options.step_control == "fixed":
        capacity = _fixed_record_count(options)
    else:
        # Capacity guess: the run at its initial step size; the buffer
        # doubles if the controller ends up taking smaller steps.
        capacity = int(options.t_stop / options.dt) // options.record_stride + 2
    recorder = _RecordingBuffer(n_columns, capacity, record_indices)

    try:
        if options.step_control == "fixed":
            run_stats = _run_fixed(
                options, assembly, solver, states, x, recorder, certifier
            )
        else:
            run_stats = _run_adaptive(
                circuit, options, assembly, solver, states, x, recorder, certifier
            )
    except _RunAbort as abort:
        if options.on_abort == "raise":
            if abort.error is not None:
                raise abort.error
            raise SimulationError(
                f"transient aborted: {abort.reason} budget exhausted at "
                f"t={abort.stats.get('t_abort', 0.0):.4e}"
            )
        run_stats = dict(abort.stats)
        run_stats["abort_reason"] = abort.reason
        run_stats["completed"] = False
        if abort.error is not None:
            run_stats["abort_error"] = str(abort.error)

    times, records = recorder.arrays()
    if certifier is not None:
        certifier.check_grid(times, options)
    stats: Dict[str, object] = {
        "strategy": solver.strategy,
        "backend": assembly.backend.name,
        "step_control": options.step_control,
        "newton_iterations": solver.newton_iterations,
        "lu_refactorizations": solver.lu_refactorizations,
    }
    if krylov_base is not None:
        now = backend.counters()
        stats["krylov"] = {k: now[k] - krylov_base[k] for k in now}
    if options.guards or options.certify:
        stats["health"] = health
        if certifier is not None:
            stats["certified_steps"] = certifier.checked
    if options.preflight != "off":
        stats["preflight"] = preflight_diags
    stats.update(run_stats)
    return TransientResult(
        circuit=circuit,
        t=times,
        x=records,
        recorded_nodes=recorded_nodes,
        stats=stats,
    )
