"""Fixed-step transient analysis with trapezoidal or backward-Euler
integration and Newton iteration at every time point.

The oscillator startup experiment (Fig 16) runs a few hundred carrier
cycles of a 2–5 MHz LC tank; a fixed step of ~1/60 of the carrier
period with trapezoidal integration keeps both amplitude and frequency
errors well below a percent, which is plenty for shape-level
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..analysis.waveform import Waveform
from ..errors import ConvergenceError, SimulationError
from .component import MNASystem, StampContext
from .dcop import NewtonOptions, solve_dc
from .netlist import Circuit

__all__ = ["TransientOptions", "TransientResult", "run_transient"]


@dataclass
class TransientOptions:
    """Settings for :func:`run_transient`."""

    t_stop: float = 1e-3
    dt: float = 1e-6
    method: str = "trap"
    #: Start from DC operating point (False: start from ICs / zeros).
    use_dc_operating_point: bool = True
    newton: NewtonOptions = field(default_factory=NewtonOptions)
    #: Record every n-th step (1 = all).
    record_stride: int = 1

    def __post_init__(self) -> None:
        if self.t_stop <= 0 or self.dt <= 0:
            raise SimulationError("t_stop and dt must be positive")
        if self.dt >= self.t_stop:
            raise SimulationError("dt must be smaller than t_stop")
        if self.method not in ("trap", "be"):
            raise SimulationError(f"unknown method {self.method!r}")
        if self.record_stride < 1:
            raise SimulationError("record_stride must be >= 1")


@dataclass
class TransientResult:
    """Recorded node voltages (and branch currents) over time."""

    circuit: Circuit
    t: np.ndarray
    x: np.ndarray  # shape (n_samples, system_size)

    def waveform(self, node: str) -> Waveform:
        idx = self.circuit.node_index(node)
        if idx < 0:
            y = np.zeros_like(self.t)
        else:
            y = self.x[:, idx]
        return Waveform(self.t, y, name=node)

    def differential(self, node_p: str, node_n: str) -> Waveform:
        wp = self.waveform(node_p)
        wn = self.waveform(node_n)
        return Waveform(self.t, wp.y - wn.y, name=f"{node_p}-{node_n}")

    def branch_current(self, component_name: str) -> Waveform:
        component = self.circuit[component_name]
        branches = component.branch_indices
        if not branches:
            raise SimulationError(f"{component_name} has no branch current")
        return Waveform(self.t, self.x[:, branches[0]], name=f"i({component_name})")


def _newton_step(
    circuit: Circuit,
    x_guess: np.ndarray,
    states: Dict[str, object],
    time: float,
    dt: float,
    method: str,
    options: NewtonOptions,
) -> np.ndarray:
    x = x_guess.copy()
    nonlinear = circuit.has_nonlinear()
    last_delta = np.inf
    for _iteration in range(options.max_iterations):
        system = MNASystem(circuit.size)
        ctx = StampContext(
            system=system,
            x=x,
            time=time,
            dt=dt,
            method=method,
            gmin=options.gmin,
            states=states,
        )
        for component in circuit:
            component.stamp(ctx)
        for i in range(circuit.n_nodes):
            system.add_G(i, i, options.gmin)
        try:
            x_new = np.linalg.solve(system.G, system.rhs)
        except np.linalg.LinAlgError:
            x_new, *_ = np.linalg.lstsq(system.G, system.rhs, rcond=None)
        if not nonlinear:
            return x_new
        delta = x_new - x
        max_delta = float(np.max(np.abs(delta)))
        if max_delta > options.max_step:
            delta *= options.max_step / max_delta
        x = x + delta
        last_delta = float(np.max(np.abs(delta)))
        tol = options.abstol_v + options.reltol * float(np.max(np.abs(x)))
        if last_delta < tol:
            return x
    raise ConvergenceError(
        f"transient Newton failed at t={time:.4e}",
        iterations=options.max_iterations,
        residual=last_delta,
    )


def run_transient(circuit: Circuit, options: Optional[TransientOptions] = None) -> TransientResult:
    """Integrate the circuit from 0 to ``t_stop``.

    The initial condition is the DC operating point (sources evaluated
    at t = 0) unless ``use_dc_operating_point`` is False, in which case
    node voltages start at zero and component ``ic`` values are honored.
    """
    options = options or TransientOptions()
    circuit.prepare()

    if options.use_dc_operating_point:
        op = solve_dc(circuit, options=options.newton)
        x = op.x.copy()
    else:
        x = np.zeros(circuit.size)

    states: Dict[str, object] = {}
    for component in circuit:
        state = component.init_state(x)
        if state is not None:
            states[component.name] = state

    n_steps = int(round(options.t_stop / options.dt))
    times: List[float] = [0.0]
    records: List[np.ndarray] = [x.copy()]
    time = 0.0
    for step in range(1, n_steps + 1):
        time = step * options.dt
        x = _newton_step(
            circuit, x, states, time, options.dt, options.method, options.newton
        )
        # Commit integrator states.
        ctx = StampContext(
            system=MNASystem(circuit.size),
            x=x,
            time=time,
            dt=options.dt,
            method=options.method,
            states=states,
        )
        for component in circuit:
            if component.name in states:
                states[component.name] = component.update_state(ctx)
        if step % options.record_stride == 0:
            times.append(time)
            records.append(x.copy())
    return TransientResult(circuit=circuit, t=np.asarray(times), x=np.vstack(records))
