"""Pluggable dense/sparse linear-algebra backends for the MNA engines.

Every analysis in :mod:`repro.circuits` reduces to the same three
operations on the assembled MNA system: *finalize* a recorded stamp
stream into a matrix, *factor* that matrix, and *solve* against the
factorization for many right-hand sides.  This module makes the
storage behind those operations pluggable so the engines scale past
the paper's hand-built netlists:

* :class:`DenseBackend` — the historical path, bit-pinned to the
  pre-refactor results: dense ``(n, n)`` matrices finalized with
  stream-order accumulation (:meth:`~repro.circuits.component.
  StampPattern.dense`) and factored by :class:`~repro.circuits.
  linsolve.ReusableLU` (explicit inverse below 64 unknowns, partial-
  pivoting LU above, least-squares degradation for singular systems).
  Right for the few-node lumped netlists where LAPACK call overhead
  dominates arithmetic.
* :class:`SparseBackend` — CSR matrices finalized from the same stamp
  stream (:meth:`~repro.circuits.component.StampPattern.csr_arrays`)
  and factored once per step size by ``scipy.sparse.linalg.splu``;
  the factorization is reused for every solve at that step size, and
  the engines' Sherman–Morrison / Woodbury rank-k Newton updates are
  applied *against* the sparse LU, so nonlinear steps never
  re-factorize.  Right for distributed netlists (coil ladders,
  segmented rails) with hundreds-to-thousands of unknowns, where the
  MNA matrix is overwhelmingly empty.
* :class:`KrylovBackend` — iterative solves (iterative refinement
  escalating to GMRES/BiCGStab) preconditioned by a *stale* LU that
  is shared across dt-cache entries and Newton iterations and
  refreshed only when iteration counts degrade past a threshold.
  Past ~10k unknowns even the per-``dt`` ``splu`` refactorizations of
  the sparse backend dominate an adaptive transient's wall clock
  (breakpoint-truncated one-shot step sizes, LRU evictions, DC Newton
  re-factorization); the Krylov backend pays one factorization and
  amortizes every other matrix in the run against it.  The 2-D
  ``coil_mesh`` / multi-coil-array workloads (10k–100k unknowns) are
  its territory.

Selection
---------
Callers pass ``backend="auto" | "dense" | "sparse" | "krylov"`` (or an
instance).  ``"auto"`` picks dense below
:data:`SPARSE_AUTO_THRESHOLD` unknowns, sparse at or above it, and
Krylov at or above :data:`KRYLOV_AUTO_THRESHOLD` — the crossovers
measured on the ladder/mesh workloads of ``benchmarks/run_perf.py``.
Explicit names override for tests and benchmarks.

Statefulness: the dense and sparse backends are stateless strategy
objects (dense is a module singleton); a :class:`KrylovBackend`
*instance* owns the stale preconditioner, so :func:`resolve_backend`
constructs a fresh one per resolution — one engine run (which resolves
once and threads the instance through its DC seed and transient loop)
shares one preconditioner, while unrelated runs never share state
unless the caller passes one instance to both on purpose.

scipy degradation
-----------------
scipy is an optional accelerator everywhere in this library
(mirroring :mod:`~repro.circuits.linsolve`).  Without it,
``"auto"`` silently resolves to :class:`DenseBackend` — correct on
every netlist, merely slower on large ones — while an *explicit*
``backend="sparse"`` request raises :class:`~repro.errors.
SimulationError` immediately with instructions, rather than failing
deep inside an engine.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from ..errors import SimulationError
from .component import StampPattern
from .linsolve import ReusableLU

try:  # scipy is an optional accelerator; numpy covers every path.
    from scipy import sparse as _sparse
    from scipy.sparse import linalg as _spla
    from scipy.sparse.linalg import splu as _splu

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised via the no-scipy tests
    _sparse = None
    _spla = None
    _splu = None
    _HAVE_SCIPY = False

__all__ = [
    "MatrixBackend",
    "DenseBackend",
    "SparseBackend",
    "KrylovBackend",
    "SparseLU",
    "KrylovSolver",
    "BlockDiagLU",
    "KrylovBlockDiag",
    "resolve_backend",
    "csr_scatter",
    "triplet_scatter",
    "SPARSE_AUTO_THRESHOLD",
    "KRYLOV_AUTO_THRESHOLD",
]


def csr_scatter(matrix: np.ndarray):
    """CSR view of a dense scatter/gather operator, or None sans scipy.

    The vectorized companion-state machinery multiplies by a
    ``(size, m)`` scatter operator with at most two entries per
    column; on distributed netlists the dense product is the single
    biggest per-step cost, so large assemblies swap in this CSR view
    when scipy allows.
    """
    if not _HAVE_SCIPY:
        return None
    return _sparse.csr_matrix(matrix)


def triplet_scatter(rows, cols, vals, shape):
    """CSR scatter operator built directly from triplets, or None
    sans scipy.

    Equivalent to ``csr_scatter`` of the dense operator those triplets
    describe, without ever materializing it — a ``(size, m)`` scatter
    at mesh scale (1e5 unknowns, several 1e4 reactive elements) is a
    multi-gigabyte dense intermediate for a few-entries-per-column
    operator.  The CSR is canonicalized (sorted indices, summed
    duplicates), matching what ``csr_scatter`` produces, so products
    are bit-identical to the dense-then-convert path.
    """
    if not _HAVE_SCIPY:
        return None
    out = _sparse.coo_matrix(
        (np.asarray(vals, dtype=float),
         (np.asarray(rows, dtype=np.intp), np.asarray(cols, dtype=np.intp))),
        shape=shape,
    ).tocsr()
    out.sum_duplicates()
    out.sort_indices()
    return out

#: Unknown count at which ``backend="auto"`` switches from dense to
#: sparse.  Below it the dense solve is a single cache-friendly BLAS
#: call; above it the O(n^2) dense triangular solves (and the O(n^3)
#: factorizations behind them) lose to the near-linear sparse path.
#: Measured on the ladder workloads of ``benchmarks/run_perf.py``:
#: dense still wins at ~60 unknowns, sparse wins ~1.6x at ~120 and
#: the gap widens to >10x by ~1200.
SPARSE_AUTO_THRESHOLD = 100

#: Unknown count at which ``backend="auto"`` promotes from sparse
#: direct to the stale-LU-preconditioned Krylov backend.  Below it a
#: per-``dt`` splu is cheap enough that paying it per cache entry is
#: fine; above it one factorization costs tens of direct solves (2-D
#: mesh fill-in grows superlinearly) and an adaptive run's entry
#: churn — breakpoint-truncated one-shot step sizes, LRU evictions,
#: order switches — makes refactorization the dominant cost.  Kept
#: well above every pre-existing workload so dense/sparse results
#: below it are bit-identical to earlier releases.
KRYLOV_AUTO_THRESHOLD = 20_000


class MatrixBackend:
    """Protocol for a linear-algebra storage/factorization strategy.

    A backend turns the *value* half of a stamp stream into a matrix
    object (dense ndarray or CSR) and factors such matrices into
    objects exposing ``solve(rhs)`` (vector or multi-column) plus an
    ``n_factorizations`` counter for the engine diagnostics.
    """

    name: str = "abstract"
    #: Whether matrices produced by this backend are dense ndarrays
    #: (the engines use this to gate dense-only strategies like the
    #: chord Jacobian and per-iteration full restamping).
    is_dense: bool = False
    #: Whether the backend solves to a tolerance rather than by direct
    #: factorization.  Iterative backends tolerate matrix values that
    #: are reconstructed to within rounding (the assembly's affine
    #: dt-entry fast path) — direct backends must keep the bit-exact
    #: stamped stream, because their answers are pinned by goldens.
    is_iterative: bool = False

    def finalize(self, pattern: StampPattern, values: np.ndarray):
        """Materialize one assembly's matrix from its value stream."""
        raise NotImplementedError

    def factor(self, matrix):
        """Factor a finalized matrix; returns a solver object."""
        raise NotImplementedError


class DenseBackend(MatrixBackend):
    """The historical dense path, bit-pinned to pre-backend results."""

    name = "dense"
    is_dense = True

    def finalize(self, pattern: StampPattern, values: np.ndarray) -> np.ndarray:
        G = pattern.dense(values)
        # Freeze: cached base matrices are shared by reference; a stamp
        # that (incorrectly) writes one must fail loudly.
        G.setflags(write=False)
        return G

    def factor(self, matrix: np.ndarray) -> ReusableLU:
        return ReusableLU(matrix)


class SparseLU:
    """A cached ``scipy.sparse.linalg.splu`` factorization.

    The sparse counterpart of :class:`~repro.circuits.linsolve.
    ReusableLU`: factor once, solve any number of (possibly multi-
    column) right-hand sides, degrade to a dense least-squares solve
    when the matrix is singular (floating nodes under fault injection)
    so callers never need their own error handling.
    """

    def __init__(self, matrix):
        self._matrix = matrix
        self._lu = None
        self._dense: Optional[np.ndarray] = None
        self._condest: Optional[float] = None
        self.n_factorizations = 1
        try:
            self._lu = _splu(matrix.tocsc())
        except (RuntimeError, ValueError):
            # Exactly singular: remember the densified matrix for the
            # minimum-norm fallback (rare, never the hot path).
            self._dense = matrix.toarray()

    @property
    def is_singular(self) -> bool:
        return self._lu is None

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        if self._lu is not None:
            solution = self._lu.solve(np.ascontiguousarray(rhs))
            if np.isfinite(solution).all() or not np.isfinite(rhs).all():
                return solution
            # splu accepted the factorization but a (near-)zero pivot
            # produced Inf/NaN at solve time: degrade to the dense
            # minimum-norm path, permanently.
            self._lu = None
            self._condest = None
            self._dense = self._matrix.toarray()
        solution, *_ = np.linalg.lstsq(self._dense, rhs, rcond=None)
        return solution

    def solve_transposed(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A.T @ x = rhs`` (condition-estimator support)."""
        if self._lu is not None:
            return self._lu.solve(np.ascontiguousarray(rhs), trans="T")
        if self._dense is None:  # pragma: no cover - defensive
            self._dense = self._matrix.toarray()
        solution, *_ = np.linalg.lstsq(self._dense.T, rhs, rcond=None)
        return solution

    def condest(self) -> float:
        """Estimated 1-norm condition number (Hager; cached).

        ``inf`` for singular/degraded factorizations.  Costs a few
        triangular solves against the existing LU and mutates nothing,
        so arming it never changes results.
        """
        if self._condest is not None:
            return self._condest
        if self._lu is None:
            self._condest = float("inf")
            return self._condest
        from .health import condest_from_solves

        norm_a = float(np.max(np.abs(self._matrix).sum(axis=0)))
        estimate = condest_from_solves(
            norm_a, self.solve, self.solve_transposed, self._matrix.shape[0]
        )
        self._condest = float(estimate) if np.isfinite(estimate) else float("inf")
        return self._condest


class BlockDiagLU:
    """Symbolic-once LU of ``S`` same-structure diagonal blocks.

    The batched lockstep engine factors ``S`` per-sample MNA matrices
    that share one CSR structure (the lockstep topology check
    guarantees it).  Factoring the assembled ``(S*n, S*n)``
    block-diagonal matrix with a single ``splu`` redoes the
    fill-reducing column analysis over the full structure on every
    ``dt`` entry; this class runs that *symbolic* phase once — the
    COLAMD ordering depends only on the sparsity pattern, which every
    block shares — and then performs only the *numeric* factorization
    per block, by pre-permuting each block's columns and handing
    ``splu`` ``permc_spec="NATURAL"``.

    Because each sample's block is factored independently of its
    batch-mates (same ordering, same pivot path for the same values),
    a sample's solution does not depend on which batch — or campaign
    *shard* — it rides in.  The sharded campaign merge relies on
    exactly this for bit-identical results.

    scipy's API has no pure-symbolic entry point, so the ordering is
    harvested from a throwaway ``splu`` of the first block; when even
    that fails (singular probe block) the per-block factorizations
    fall back to letting each ``splu`` analyse itself.
    """

    def __init__(self, blocks, perm_c: Optional[np.ndarray] = None):
        if not _HAVE_SCIPY:  # pragma: no cover - callers gate on scipy
            raise SimulationError(
                "BlockDiagLU requires scipy (scipy.sparse.linalg.splu)"
            )
        self.n = int(blocks[0].shape[0])
        if perm_c is None:
            perm_c = self.column_ordering(blocks[0])
        self.perm_c = perm_c
        self.n_factorizations = len(blocks)
        self._blocks = list(blocks)
        self._condest: Optional[np.ndarray] = None
        self._lus = []
        self._dense = []
        for block in blocks:
            csc = block.tocsc()
            try:
                if perm_c is not None:
                    lu = _splu(csc[:, perm_c], permc_spec="NATURAL")
                else:
                    lu = _splu(csc)
                self._lus.append(lu)
                self._dense.append(None)
            except (RuntimeError, ValueError):
                # Exactly singular block: remember it densified for the
                # minimum-norm fallback (mirrors SparseLU; the batched
                # engine raises BatchIncompatible before solving).
                self._lus.append(None)
                self._dense.append(block.toarray())

    @staticmethod
    def column_ordering(block) -> Optional[np.ndarray]:
        """Fill-reducing column permutation of one block's structure.

        Purely structural, so one call covers every same-pattern block
        (and every later ``dt`` entry).  Returns ``None`` when the
        probe factorization fails — callers then let each block's
        ``splu`` run its own analysis.
        """
        try:
            return _splu(block.tocsc()).perm_c
        except (RuntimeError, ValueError):
            return None

    @property
    def is_singular(self) -> bool:
        return any(lu is None for lu in self._lus)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve the block-diagonal system for a stacked RHS.

        ``rhs`` is ``(S*n,)`` or ``(S*n, k)`` — the same contract as
        the single big-matrix :class:`SparseLU` this replaces.
        """
        n = self.n
        out = np.empty(rhs.shape, dtype=float)
        perm = self.perm_c
        for s, lu in enumerate(self._lus):
            seg = np.ascontiguousarray(rhs[s * n : (s + 1) * n])
            if lu is None:
                sol, *_ = np.linalg.lstsq(self._dense[s], seg, rcond=None)
                out[s * n : (s + 1) * n] = sol
                continue
            if perm is None:
                sol = lu.solve(seg)
            else:
                # Factored A[:, perm], so A x = b  =>  x[perm] = y.
                sol = np.empty(seg.shape, dtype=float)
                sol[perm] = lu.solve(seg)
            if not np.isfinite(sol).all() and np.isfinite(seg).all():
                # Zero pivot survived factorization of this block:
                # degrade it (and only it) to minimum-norm, permanently.
                self._lus[s] = None
                self._dense[s] = self._blocks[s].toarray()
                self._condest = None
                sol, *_ = np.linalg.lstsq(self._dense[s], seg, rcond=None)
            out[s * n : (s + 1) * n] = sol
        return out

    def solve_block_transposed(self, s: int, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A_s.T @ x = rhs`` for one block (condest support)."""
        lu = self._lus[s]
        if lu is None:
            dense = self._dense[s]
            if dense is None:  # pragma: no cover - defensive
                dense = self._blocks[s].toarray()
            sol, *_ = np.linalg.lstsq(dense.T, rhs, rcond=None)
            return sol
        perm = self.perm_c
        if perm is None:
            return lu.solve(np.ascontiguousarray(rhs), trans="T")
        # Factored M = A[:, perm] = A P, so A.T x = c  <=>  M.T x = c[perm].
        return lu.solve(np.ascontiguousarray(rhs[perm]), trans="T")

    def solve_block(self, s: int, rhs: np.ndarray) -> np.ndarray:
        """Solve one block's system (condest support)."""
        lu = self._lus[s]
        if lu is None:
            dense = self._dense[s]
            if dense is None:  # pragma: no cover - defensive
                dense = self._blocks[s].toarray()
            sol, *_ = np.linalg.lstsq(dense, rhs, rcond=None)
            return sol
        perm = self.perm_c
        if perm is None:
            return lu.solve(np.ascontiguousarray(rhs))
        sol = np.empty(rhs.shape, dtype=float)
        sol[perm] = lu.solve(np.ascontiguousarray(rhs))
        return sol

    def condest_blocks(self) -> np.ndarray:
        """Per-block estimated 1-norm condition numbers, ``(S,)``.

        Hager estimate per block against the cached numeric LU;
        ``inf`` for singular/degraded blocks.  Cached; read-only.
        """
        if self._condest is not None:
            return self._condest
        from .health import condest_from_solves

        out = np.empty(len(self._lus))
        for s, lu in enumerate(self._lus):
            if lu is None:
                out[s] = np.inf
                continue
            norm_a = float(np.max(np.abs(self._blocks[s]).sum(axis=0)))
            out[s] = condest_from_solves(
                norm_a,
                lambda b, s=s: self.solve_block(s, b),
                lambda b, s=s: self.solve_block_transposed(s, b),
                self.n,
            )
        self._condest = out
        return out


class SparseBackend(MatrixBackend):
    """CSR storage with splu factorization reuse.

    Construction fails fast with :class:`~repro.errors.
    SimulationError` when scipy is unavailable; use
    :func:`resolve_backend` with ``"auto"`` for the silent dense
    fallback instead.
    """

    name = "sparse"
    is_dense = False

    def __init__(self):
        if not _HAVE_SCIPY:
            raise SimulationError(
                "backend='sparse' requires scipy (scipy.sparse.linalg.splu); "
                "install scipy or use backend='auto'/'dense', which run "
                "every netlist on the dense path"
            )

    def finalize(self, pattern: StampPattern, values: np.ndarray):
        data, indices, indptr = pattern.csr_arrays(values)
        return _sparse.csr_matrix(
            (data, indices, indptr), shape=(pattern.size, pattern.size)
        )

    def factor(self, matrix) -> SparseLU:
        return SparseLU(matrix)

    @staticmethod
    def csr_from_coo(
        rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, size: int
    ):
        """One-shot CSR from raw triplets (duplicates summed).

        Used by the analyses that re-assemble per solve (DC Newton
        iterations, AC frequency points) where caching a
        :class:`~repro.circuits.component.StampPattern` buys nothing.
        """
        return _sparse.coo_matrix(
            (vals, (rows, cols)), shape=(size, size)
        ).tocsr()

    @staticmethod
    def block_diag(blocks):
        """Block-diagonal CSC of per-sample matrices (batched engine)."""
        return _sparse.block_diag(blocks, format="csc")


class KrylovSolver:
    """Iterative 'factorization' of one finalized CSR matrix.

    Returned by :meth:`KrylovBackend.factor`; satisfies the same
    contract as :class:`SparseLU` (``solve`` for vector or
    multi-column right-hand sides, an ``n_factorizations`` counter)
    but performs no factorization of its own.  Solves run iterative
    refinement escalating to GMRES/BiCGStab, preconditioned by the
    owning backend's *stale* LU — one factorization shared by every
    solver the backend has handed out, across dt-cache entries and
    Newton iterations.  ``n_factorizations`` counts the preconditioner
    refreshes (and direct-fallback factorizations) this solver
    triggered, so the engines' factorization diagnostics stay honest
    when summed across solvers.

    Deliberately exposes no ``condest``: there is no factorization of
    *this* matrix to estimate against, and the health guards skip
    condition estimation (keeping NaN/Inf screening) when the solver
    cannot provide one.
    """

    __slots__ = (
        "_matrix", "_backend", "n_factorizations", "_last_applies", "_scale"
    )

    def __init__(self, matrix, backend: "KrylovBackend"):
        self._matrix = matrix
        self._backend = backend
        self.n_factorizations = 0
        #: Preconditioner applies the previous solve of this matrix
        #: needed — the proactive-refresh trigger reads it.
        self._last_applies = 0
        #: Lazy anchor-selection proxy (see :meth:`_scale_proxy`).
        self._scale: Optional[float] = None

    @property
    def matrix(self):
        return self._matrix

    def _scale_proxy(self):
        """Scalar fingerprint used to pick the nearest anchor: the
        matrix's value stream projected onto a fixed random vector.

        Companion matrices of one assembly share a sparsity pattern
        and differ affinely in the reciprocal step size (``data =
        c + s/dt``), so the projection is *linear* in ``1/dt`` — the
        fingerprint is a coordinate along the step-size axis, and
        nearest-fingerprint is nearest-``dt``.  A plain entry-mass sum
        cannot do this job: the reactive companion terms that actually
        move between entries are orders of magnitude below the static
        conductances, so every entry's mass looks identical.
        """
        s = self._scale
        if s is None:
            data = self._matrix.data
            s = np.dot(data, self._backend._sketch_for(data.shape[0]))
            self._scale = s
        return s

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs)
        if rhs.ndim == 1:
            return self._solve_one(rhs)
        dtype = np.result_type(self._matrix.dtype, rhs.dtype, np.float64)
        out = np.empty(rhs.shape, dtype=dtype)
        for k in range(rhs.shape[1]):
            out[:, k] = self._solve_one(rhs[:, k])
        return out

    def _solve_one(self, b: np.ndarray) -> np.ndarray:
        backend = self._backend
        if not backend._anchors:
            backend._refresh(self)
        anchor = backend._anchor_for(self._matrix, self._scale_proxy())
        if anchor.matrix is self._matrix:
            # An anchor's LU *is* this matrix's LU: a plain direct
            # solve, bit-matching what SparseBackend would produce.
            # Once the dt ladder's hot matrices are anchored, an
            # adaptive run's solves are nearly all this path.
            backend.n_solves += 1
            return backend._apply_precond(b, anchor)
        if backend._cooldown > 0:
            backend._cooldown -= 1
        elif self._last_applies > backend.refresh_iterations:
            # The previous solve of *this* matrix was expensive and
            # the refresh cooldown has passed: re-anchor an LU on it
            # before paying the iterations again.  The evidence is
            # deliberately per-matrix — a one-shot matrix (an adaptive
            # cascade passing through) is cheaper to iterate once than
            # to factor, and anchoring it would evict a hot slot.
            backend._refresh(self)
            backend.n_solves += 1
            self._last_applies = 0
            return backend._apply_precond(b)
        dtype = np.result_type(self._matrix.dtype, b.dtype, np.float64)
        x, applies, converged = backend._iterate(
            self._matrix.dot,
            b,
            dtype,
            precond=lambda rhs: backend._apply_precond(rhs, anchor),
        )
        backend.n_solves += 1
        backend.n_iterations += applies
        self._last_applies = applies
        backend._last_solve_applies = applies
        if converged:
            return x
        # Non-convergence forces a refresh: factor this matrix and
        # answer from the fresh LU (which also serves future solves).
        backend._refresh(self)
        self._last_applies = 0
        return backend._apply_precond(b)

    def solve_updated(
        self,
        rhs: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> np.ndarray:
        """Solve ``(A + delta) x = rhs`` matrix-free.

        ``delta`` is the COO triplet stream of a Newton iteration's
        nonlinear stamps.  The product ``(A + delta) v`` is applied as
        ``A v`` plus a scatter-accumulate of the triplets — the
        stacked CSR is never re-assembled per iteration — and the
        stale LU of the *base* matrix preconditions the iteration
        (Newton deltas are local, so it stays an excellent
        preconditioner).  Non-convergence falls back to one direct
        one-shot factorization of the updated matrix without stealing
        the shared preconditioner (the delta changes next iteration).
        """
        backend = self._backend
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        vals = np.asarray(vals, dtype=float)
        b = np.asarray(rhs)
        A = self._matrix

        def matvec(v):
            out = A.dot(v)
            np.add.at(out, rows, vals * v[cols])
            return out

        if not backend._anchors:
            backend._refresh(self)
        # Newton deltas are local: the base matrix's nearest anchor
        # preconditions the updated system just as well.
        anchor = backend._anchor_for(A, self._scale_proxy())
        dtype = np.result_type(A.dtype, b.dtype, np.float64)
        x, applies, converged = backend._iterate(
            matvec,
            b,
            dtype,
            precond=lambda rhs: backend._apply_precond(rhs, anchor),
        )
        backend.n_solves += 1
        backend.n_iterations += applies
        backend._last_solve_applies = applies
        if converged:
            return x
        updated = A + _sparse.coo_matrix((vals, (rows, cols)), shape=A.shape).tocsr()
        backend.n_fallback_solves += 1
        self.n_factorizations += 1
        return SparseLU(updated).solve(b)


class _BlockAnchor:
    """One pooled per-sample preconditioner: the block it factored
    (strong ref, so identity checks never alias a recycled object),
    its LU — or the dense least-squares fallback when the
    factorization hit a zero pivot — and the sketch fingerprint used
    for nearest-anchor selection."""

    __slots__ = ("mat", "lu", "dense", "scale")

    def __init__(self, mat, lu, dense, scale: float):
        self.mat = mat
        self.lu = lu
        self.dense = dense
        self.scale = scale


class _BlockStaleState:
    """Per-sample stale preconditioners of one :class:`KrylovBackend`.

    Lives on the backend instance (not on a dt entry) so the batched
    assembly's cache entries all share it — the ``BlockDiagLU``-style
    symbolic-once column ordering plus one small LRU *pool* of stale
    anchors per sample.  A dt ladder that alternates entries (adaptive
    probe/half steps, envelope correction bursts re-entering a hot
    dt) keeps an anchor per rung instead of thrashing a single slot.
    """

    __slots__ = ("n", "n_samples", "perm", "pools", "last_applies")

    def __init__(self, n: int, n_samples: int, perm: Optional[np.ndarray]):
        self.n = n
        self.n_samples = n_samples
        self.perm = perm
        #: Per-sample anchor pools, least-recently-used first.
        self.pools: List[List[_BlockAnchor]] = [[] for _ in range(n_samples)]
        self.last_applies = [0] * n_samples


class KrylovBlockDiag:
    """Per-sample stale-LU-preconditioned solves of ``S`` blocks.

    The Krylov counterpart of :class:`BlockDiagLU` for the batched
    lockstep engine: same stacked-RHS ``solve`` contract, same
    per-sample isolation (a sample that degrades to least-squares
    poisons no shard-mate).  Numeric factorizations are lazy —
    first-touch per sample — and land in per-sample LRU *anchor
    pools* keyed by a sketch fingerprint of the block's value stream:
    a solve whose block an anchor already factored direct-solves it,
    any other block rides its sample's nearest-fingerprint anchor
    iteratively, refreshing (pooling a new anchor) only when the
    iteration counts degrade.  Envelope correction bursts and
    adaptive probe/half ladders therefore re-enter hot dt rungs
    without refactoring.  ``n_factorizations`` counts the
    factorizations this object triggered.
    """

    def __init__(self, blocks, backend: "KrylovBackend"):
        self.n = int(blocks[0].shape[0])
        self._blocks = list(blocks)
        self._backend = backend
        self.n_factorizations = 0
        state = backend._block_state
        if (
            state is None
            or state.n != self.n
            or state.n_samples != len(blocks)
        ):
            perm = BlockDiagLU.column_ordering(blocks[0])
            backend._block_state = _BlockStaleState(self.n, len(blocks), perm)
            # No eager per-sample factorization: each sample anchors
            # on first touch (first solve, or the constructor-time
            # ``is_singular`` gate probing empty pools).

    @property
    def _state(self) -> _BlockStaleState:
        return self._backend._block_state

    def _fingerprint(self, block) -> float:
        data = block.data
        return float(np.dot(data, self._backend._sketch_for(data.shape[0])))

    def _anchor_sample(self, s: int) -> _BlockAnchor:
        """Factor sample ``s``'s current block into its anchor pool,
        evicting the least-recently-used anchor past the pool cap."""
        state = self._state
        block = self._blocks[s]
        csc = block.tocsc()
        try:
            if state.perm is not None:
                lu = _splu(csc[:, state.perm], permc_spec="NATURAL")
            else:
                lu = _splu(csc)
            anchor = _BlockAnchor(block, lu, None, self._fingerprint(block))
        except (RuntimeError, ValueError):
            # Singular for this sample's values: least-squares for it,
            # untouched direct path for its shard-mates.
            anchor = _BlockAnchor(
                block, None, block.toarray(), self._fingerprint(block)
            )
        pool = state.pools[s]
        pool.append(anchor)
        if len(pool) > self._backend.pool_size:
            pool.pop(0)
        state.last_applies[s] = 0
        self.n_factorizations += 1
        self._backend.n_refreshes += 1
        return anchor

    def _anchor_for_sample(self, s: int) -> Optional[_BlockAnchor]:
        """The pool anchor serving sample ``s``'s current block: its
        own slot when one exists, else the nearest by sketch
        fingerprint (same-pattern anchors preferred); ``None`` when
        the pool is empty (first touch).  The chosen slot moves to the
        most-recently-used end, which eviction keys on."""
        state = self._state
        block = self._blocks[s]
        pool = state.pools[s]
        best = None
        for a in pool:
            if a.mat is block:
                best = a
                break
        if best is None:
            if not pool:
                return None
            nnz = block.data.shape[0]
            same = [a for a in pool if a.mat.data.shape[0] == nnz]
            scale = self._fingerprint(block)
            best = min(same or pool, key=lambda a: abs(a.scale - scale))
        if pool[-1] is not best:
            pool.remove(best)
            pool.append(best)
        return best

    def _apply_anchor(self, anchor: _BlockAnchor, rhs: np.ndarray) -> np.ndarray:
        if anchor.lu is None:
            sol, *_ = np.linalg.lstsq(anchor.dense, rhs, rcond=None)
            return sol
        perm = self._state.perm
        if perm is None:
            return anchor.lu.solve(np.ascontiguousarray(rhs))
        sol = np.empty(rhs.shape, dtype=float)
        sol[perm] = anchor.lu.solve(np.ascontiguousarray(rhs))
        return sol

    @property
    def is_singular(self) -> bool:
        """True when some sample's *current* block factored singular.

        Samples whose pools are empty are probed here (their
        first-touch factorization, not an extra one) so the batched
        engine's first-entry gate stays meaningful; samples already
        holding anchors are left alone — a later dt entry answers
        from pooled evidence without refactoring anything.
        """
        bad = False
        for s, block in enumerate(self._blocks):
            pool = self._state.pools[s]
            anchor = next((a for a in pool if a.mat is block), None)
            if anchor is None and not pool:
                anchor = self._anchor_sample(s)
            if anchor is not None and anchor.lu is None:
                bad = True
        return bad

    def _solve_sample(self, s: int, seg: np.ndarray) -> np.ndarray:
        backend = self._backend
        state = self._state
        block = self._blocks[s]
        anchor = self._anchor_for_sample(s)
        if anchor is None:
            anchor = self._anchor_sample(s)
        if anchor.mat is block:
            backend.n_solves += 1
            sol = self._apply_anchor(anchor, seg)
            if np.isfinite(sol).all() or not np.isfinite(seg).all():
                return sol
            # Zero pivot survived this sample's factorization: degrade
            # its slot (and only it) to minimum-norm, permanently.
            anchor.lu = None
            anchor.dense = block.toarray()
            backend.n_fallback_solves += 1
            return self._apply_anchor(anchor, seg)
        if state.last_applies[s] > backend.refresh_iterations:
            anchor = self._anchor_sample(s)
            backend.n_solves += 1
            return self._apply_anchor(anchor, seg)
        x, applies, converged = backend._iterate(
            block.dot, seg, float, precond=lambda r: self._apply_anchor(anchor, r)
        )
        backend.n_solves += 1
        backend.n_iterations += applies
        state.last_applies[s] = applies
        if converged:
            return x
        anchor = self._anchor_sample(s)
        return self._apply_anchor(anchor, seg)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve the block-diagonal system for a stacked RHS
        (``(S*n,)`` or ``(S*n, k)`` — the :class:`BlockDiagLU`
        contract)."""
        n = self.n
        out = np.empty(rhs.shape, dtype=float)
        for s in range(len(self._blocks)):
            seg = rhs[s * n : (s + 1) * n]
            if seg.ndim == 1:
                out[s * n : (s + 1) * n] = self._solve_sample(s, seg)
            else:
                for k in range(seg.shape[1]):
                    out[s * n : (s + 1) * n, k] = self._solve_sample(
                        s, np.ascontiguousarray(seg[:, k])
                    )
        return out


class _Anchor:
    """One slot of a :class:`KrylovBackend` stale-preconditioner pool:
    a factored matrix plus the sketch fingerprint nearest-anchor
    selection compares against (see
    :meth:`KrylovSolver._scale_proxy`)."""

    __slots__ = ("matrix", "lu", "scale")

    def __init__(self, matrix, fingerprint):
        self.matrix = matrix
        self.lu = SparseLU(matrix)
        self.scale = fingerprint


class KrylovBackend(MatrixBackend):
    """Iterative solves preconditioned by a shared stale LU.

    Stateful: the instance owns a pool of stale LUs (plus, for the
    batched engine, one per sample) that every solver it hands out
    shares.  :func:`resolve_backend` therefore constructs a fresh
    instance per resolution — an engine run resolves once and reuses
    the instance through its DC seed, transient loop, and every
    dt-cache entry, which is exactly the reuse that pays for itself.

    The preconditioner is a pool of up to ``pool_size`` stale LUs:
    an adaptive run's working set is the quantized dt ladder's hot
    matrices plus their Richardson half-step partners — roughly the
    dt-cache size — and any pool narrower than that set thrashes,
    evicting a hot anchor to admit the next one in rotation.  Each
    solve picks the anchor whose matrix it is (direct-solve fast
    path) or, failing that, the nearest by a sketch fingerprint of
    the value stream (linear in ``1/dt`` for one assembly's affine
    entry family, so nearest-fingerprint is nearest-``dt``);
    refreshes evict the least-recently-used slot.

    Refresh policy (the stale-preconditioner knobs):

    * the iteration budget (``max_refine`` refinement applies, then
      GMRES capped at ``max_iterations``) is sized at roughly one
      factorization's cost — a matrix too far from every anchor (a DC
      system meeting its first companion matrix, a step size jumping
      decades) burns at most that budget once before the forced
      refresh anchors it;
    * a solve whose previous run against the same matrix needed more
      than ``refresh_iterations`` preconditioner applies re-anchors
      the LU on that matrix up front (unless a refresh happened within
      the last ``refresh_cooldown`` solves — optional hysteresis for
      pools narrower than the working set).  The evidence is
      deliberately per-matrix: one-shot matrices — breakpoint-
      truncated step sizes passing through — are cheaper to iterate
      than to factor, and must not claim a slot;
    * a solve that fails to converge at all forces a refresh
      unconditionally and answers from the fresh LU;
    * everything else rides the nearest stale LU: iterative
      refinement first (1 apply when the matrix equals an anchor's,
      a few when it is near), escalating to restarted GMRES (or
      BiCGStab with ``method="bicgstab"``) when refinement stalls.
      A rebuilt dt-cache entry whose values the assembly's affine
      fast path reconstructed identically converges in 2 applies
      against its old anchor — entry churn costs no factorization.

    ``tol`` is the relative residual of the iterative solves, measured
    in the *preconditioned* norm ``||M^-1 (b - A x)|| <= tol *
    ||M^-1 b||`` — companion matrices mix nH inductor branches with nF
    capacitor nodes, so the raw residual norm is dominated by rounding
    long before the iterate stops improving.  The default 1e-8 sits
    just above that rounding floor and keeps transient waveforms
    equivalent to the direct sparse path well past the 1e-6 level the
    mesh benches assert; tightening it mostly buys refresh churn, not
    accuracy.
    """

    name = "krylov"
    is_dense = False
    is_iterative = True

    def __init__(
        self,
        method: str = "gmres",
        tol: float = 1e-8,
        refresh_iterations: int = 4,
        refresh_cooldown: int = 0,
        max_refine: int = 5,
        restart: int = 40,
        max_iterations: int = 40,
        pool_size: int = 12,
    ):
        if not _HAVE_SCIPY:
            raise SimulationError(
                "backend='krylov' requires scipy (scipy.sparse.linalg); "
                "install scipy or use backend='auto'/'dense', which run "
                "every netlist on the dense path"
            )
        if method not in ("gmres", "bicgstab"):
            raise SimulationError(
                f"unknown Krylov method {method!r}; expected 'gmres' or 'bicgstab'"
            )
        self.method = method
        self.tol = float(tol)
        self.refresh_iterations = int(refresh_iterations)
        self.refresh_cooldown = int(refresh_cooldown)
        self.max_refine = int(max_refine)
        self.restart = int(restart)
        self.max_iterations = int(max_iterations)
        if pool_size < 1:
            raise SimulationError("pool_size must be >= 1")
        self.pool_size = int(pool_size)
        # Shared stale-preconditioner pool (single-system engines),
        # least-recently-used first.
        self._anchors: List[_Anchor] = []
        # Fixed projection vectors for the sketch fingerprints,
        # cached per value-stream length.
        self._sketches: dict = {}
        self._cooldown = 0
        #: Applies the most recent iterative solve needed, whatever
        #: matrix it hit (diagnostic trail; the proactive trigger
        #: reads per-matrix evidence only).
        self._last_solve_applies = 0
        # Per-sample stale preconditioners (batched lockstep engine).
        self._block_state: Optional[_BlockStaleState] = None
        # Run diagnostics, stamped into transient stats.
        self.n_solves = 0
        self.n_iterations = 0
        self.n_refreshes = 0
        self.n_fallback_solves = 0

    def finalize(self, pattern: StampPattern, values: np.ndarray):
        data, indices, indptr = pattern.csr_arrays(values)
        return _sparse.csr_matrix(
            (data, indices, indptr), shape=(pattern.size, pattern.size)
        )

    def factor(self, matrix) -> KrylovSolver:
        return KrylovSolver(matrix, self)

    def factor_blocks(self, blocks) -> KrylovBlockDiag:
        """Per-sample stale-preconditioned solver for the batched
        engine (the :class:`BlockDiagLU` slot)."""
        return KrylovBlockDiag(blocks, self)

    def counters(self) -> dict:
        """Snapshot of the iteration/refresh diagnostics."""
        return {
            "solves": self.n_solves,
            "iterations": self.n_iterations,
            "refreshes": self.n_refreshes,
            "fallbacks": self.n_fallback_solves,
        }

    # -- stale-preconditioner internals --------------------------------------

    @property
    def _precond(self) -> Optional[SparseLU]:
        """Most recently used/refreshed anchor's LU (diagnostics)."""
        return self._anchors[-1].lu if self._anchors else None

    @property
    def _precond_matrix(self):
        """Most recently used/refreshed anchor's matrix (diagnostics)."""
        return self._anchors[-1].matrix if self._anchors else None

    def _sketch_for(self, n: int) -> np.ndarray:
        """Fixed random projection vector for value streams of length
        ``n`` (deterministically seeded, cached per length)."""
        r = self._sketches.get(n)
        if r is None:
            r = np.random.default_rng(0x5EED ^ n).standard_normal(n)
            self._sketches[n] = r
        return r

    def _anchor_for(self, matrix, scale) -> _Anchor:
        """The pool anchor serving ``matrix``: its own slot when one
        exists, else the nearest by sketch fingerprint.  Fingerprints
        are only comparable between same-pattern matrices, so anchors
        with a matching value-stream length are preferred; a foreign-
        pattern anchor (the DC system, an AC matrix) is only chosen
        when nothing comparable is pooled.  The chosen slot moves to
        the most-recently-used end, which refresh eviction keys on."""
        anchors = self._anchors
        best = None
        for a in anchors:
            if a.matrix is matrix:
                best = a
                break
        if best is None:
            nnz = matrix.data.shape[0]
            same = [a for a in anchors if a.matrix.data.shape[0] == nnz]
            best = min(same or anchors, key=lambda a: abs(a.scale - scale))
            # A rebuilt dt-cache entry (affine reconstruction after an
            # eviction) carries the matrix an anchor already factored,
            # up to reconstruction rounding (~1e-16 relative; a
            # genuinely different dt sits >=1e-6 away).  Adopt the new
            # object so this solve — and every later one — answers
            # directly from the anchor's LU instead of paying a
            # two-apply iteration; the O(nnz) comparisons are gated by
            # the near-equal fingerprint.
            bm = best.matrix
            if (
                bm.data.shape[0] == nnz
                and bm.dtype == matrix.dtype
                and abs(best.scale - scale) <= 1e-9 * (abs(scale) + 1e-300)
            ):
                dscale = float(np.abs(matrix.data).max() or 1.0)
                if (
                    float(np.abs(bm.data - matrix.data).max())
                    <= 1e-12 * dscale
                    and np.array_equal(bm.indices, matrix.indices)
                    and np.array_equal(bm.indptr, matrix.indptr)
                ):
                    best.matrix = matrix
        if anchors[-1] is not best:
            anchors.remove(best)
            anchors.append(best)
        return best

    def _refresh(self, solver) -> None:
        """Anchor a fresh LU on ``solver``'s matrix, evicting the
        least-recently-used pool slot when the pool is full."""
        anchors = self._anchors
        for a in anchors:
            if a.matrix is solver._matrix:
                anchors.remove(a)
                break
        else:
            while len(anchors) >= self.pool_size:
                anchors.pop(0)
        anchors.append(_Anchor(solver._matrix, solver._scale_proxy()))
        self._cooldown = self.refresh_cooldown
        self._last_solve_applies = 0
        self.n_refreshes += 1
        solver.n_factorizations += 1

    def _apply_precond(
        self, rhs: np.ndarray, anchor: Optional[_Anchor] = None
    ) -> np.ndarray:
        if anchor is None:
            anchor = self._anchors[-1]
        lu = anchor.lu
        if np.iscomplexobj(rhs) and anchor.matrix.dtype.kind != "c":
            # Real LU against a complex RHS: two real solves.
            return lu.solve(np.ascontiguousarray(rhs.real)) + 1j * lu.solve(
                np.ascontiguousarray(rhs.imag)
            )
        return lu.solve(np.ascontiguousarray(rhs))

    def _iterate(
        self, matvec, b: np.ndarray, dtype, precond=None
    ) -> Tuple[np.ndarray, int, bool]:
        """Preconditioned iterative solve of ``A x = b``.

        Returns ``(x, applies, converged)`` where ``applies`` counts
        preconditioner applications (the unit the refresh threshold is
        expressed in).  Stationary refinement runs first — when the
        stale LU is at (or near) the matrix it converges in 1–2
        applies with no Krylov call overhead — and hands over to
        GMRES/BiCGStab as soon as it stalls, since refinement only
        contracts when the preconditioned spectrum stays inside the
        unit disk around 1.

        Convergence is measured on the *preconditioned* residual
        ``||M^-1 (b - A x)|| <= tol * ||M^-1 b||`` — the same norm
        scipy's solvers monitor.  MNA companion matrices mix nH
        inductor branches with nF capacitor nodes, so their raw
        condition numbers put ``tol * ||b||`` in the true-residual
        norm below what double precision can reach at all; the
        preconditioned system is well-conditioned whenever the stale
        LU is usable, which makes the tolerance both attainable and a
        genuine forward-error bound.  The refinement update *is* the
        preconditioned residual, so the norm costs no extra applies.
        """
        if precond is None:
            precond = self._apply_precond
        nb = float(np.linalg.norm(b))
        n = b.shape[0]
        if nb == 0.0 or not np.isfinite(nb):
            return np.zeros(n, dtype=dtype), 0, nb == 0.0
        tol = self.tol
        x = np.asarray(precond(b), dtype=dtype)
        npb = float(np.linalg.norm(x))  # = ||M^-1 b||
        if npb == 0.0 or not np.isfinite(npb):
            return np.zeros(n, dtype=dtype), 1, npb == 0.0
        pr = np.asarray(precond(b - matvec(x)), dtype=dtype)
        applies = 2
        rn = float(np.linalg.norm(pr))
        prev = np.inf
        while rn > tol * npb and rn < 0.5 * prev and applies <= self.max_refine:
            x += pr
            prev = rn
            pr = np.asarray(precond(b - matvec(x)), dtype=dtype)
            applies += 1
            rn = float(np.linalg.norm(pr))
        if rn <= tol * npb and np.isfinite(rn):
            return x, applies, True
        op = _spla.LinearOperator((n, n), matvec=matvec, dtype=dtype)
        prec_op = _spla.LinearOperator((n, n), matvec=precond, dtype=dtype)
        count = [0]
        if not np.isfinite(x).all():
            x = None  # poisoned refinement iterate: let Krylov start cold
        if self.method == "bicgstab":
            xk, info = _spla.bicgstab(
                op,
                b,
                x0=x,
                M=prec_op,
                rtol=tol,
                atol=0.0,
                maxiter=self.max_iterations,
                callback=lambda _xk: count.__setitem__(0, count[0] + 1),
            )
            applies += 2 * count[0]
        else:
            restart = min(self.restart, n)
            xk, info = _spla.gmres(
                op,
                b,
                x0=x,
                M=prec_op,
                rtol=tol,
                atol=0.0,
                restart=restart,
                maxiter=max(1, self.max_iterations // restart),
                callback=lambda _pr: count.__setitem__(0, count[0] + 1),
                callback_type="pr_norm",
            )
            applies += count[0]
        # scipy's `info` reflects a *raw*-residual success test whose
        # tol*||b|| floor sits below double precision for badly scaled
        # MNA systems (its inner iterations target the preconditioned
        # norm, so the iterate is typically fine while info says
        # otherwise).  Judge convergence ourselves, in the same
        # preconditioned norm as the refinement loop.
        if np.isfinite(xk).all():
            prk = precond(b - matvec(xk))
            applies += 1
            rnk = float(np.linalg.norm(prk))
            if rnk <= tol * npb and np.isfinite(rnk):
                return np.asarray(xk, dtype=dtype), applies, True
            fallback = xk
        else:
            fallback = np.zeros(n, dtype=dtype)
        return np.asarray(fallback, dtype=dtype), applies, False


#: Singleton instance — the dense backend is a stateless strategy
#: object.  Sparse gets a fresh (still stateless) instance per
#: resolution; Krylov *must* be constructed per resolution because the
#: instance owns the stale preconditioner.
_DENSE = DenseBackend()


def resolve_backend(
    backend: Union[str, MatrixBackend, None], size: int
) -> MatrixBackend:
    """Resolve a backend spec to a strategy instance.

    ``"auto"`` (or ``None``) picks :class:`DenseBackend` below
    :data:`SPARSE_AUTO_THRESHOLD` unknowns — or always, when scipy is
    missing — :class:`SparseBackend` at or above that threshold, and
    :class:`KrylovBackend` at or above :data:`KRYLOV_AUTO_THRESHOLD`.
    ``"dense"``/``"sparse"``/``"krylov"`` force the choice (the scipy-
    backed ones raising a clear :class:`~repro.errors.SimulationError`
    without scipy); an already-constructed :class:`MatrixBackend`
    passes through untouched — including a caller-owned
    :class:`KrylovBackend` whose stale preconditioner then spans every
    run it is handed to.
    """
    if isinstance(backend, MatrixBackend):
        return backend
    if backend is None:
        backend = "auto"
    if backend == "auto":
        if _HAVE_SCIPY and size >= KRYLOV_AUTO_THRESHOLD:
            return KrylovBackend()
        if _HAVE_SCIPY and size >= SPARSE_AUTO_THRESHOLD:
            return SparseBackend()
        return _DENSE
    if backend == "dense":
        return _DENSE
    if backend == "sparse":
        return SparseBackend()
    if backend == "krylov":
        return KrylovBackend()
    raise SimulationError(
        f"unknown backend {backend!r}; expected 'auto', 'dense', "
        "'sparse', or 'krylov'"
    )
