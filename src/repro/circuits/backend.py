"""Pluggable dense/sparse linear-algebra backends for the MNA engines.

Every analysis in :mod:`repro.circuits` reduces to the same three
operations on the assembled MNA system: *finalize* a recorded stamp
stream into a matrix, *factor* that matrix, and *solve* against the
factorization for many right-hand sides.  This module makes the
storage behind those operations pluggable so the engines scale past
the paper's hand-built netlists:

* :class:`DenseBackend` — the historical path, bit-pinned to the
  pre-refactor results: dense ``(n, n)`` matrices finalized with
  stream-order accumulation (:meth:`~repro.circuits.component.
  StampPattern.dense`) and factored by :class:`~repro.circuits.
  linsolve.ReusableLU` (explicit inverse below 64 unknowns, partial-
  pivoting LU above, least-squares degradation for singular systems).
  Right for the few-node lumped netlists where LAPACK call overhead
  dominates arithmetic.
* :class:`SparseBackend` — CSR matrices finalized from the same stamp
  stream (:meth:`~repro.circuits.component.StampPattern.csr_arrays`)
  and factored once per step size by ``scipy.sparse.linalg.splu``;
  the factorization is reused for every solve at that step size, and
  the engines' Sherman–Morrison / Woodbury rank-k Newton updates are
  applied *against* the sparse LU, so nonlinear steps never
  re-factorize.  Right for distributed netlists (coil ladders,
  segmented rails) with hundreds-to-thousands of unknowns, where the
  MNA matrix is overwhelmingly empty.

Selection
---------
Callers pass ``backend="auto" | "dense" | "sparse"`` (or an instance).
``"auto"`` picks dense below :data:`SPARSE_AUTO_THRESHOLD` unknowns
and sparse at or above it — the crossover measured on the ladder
workloads of ``benchmarks/run_perf.py``.  Explicit names override for
tests and benchmarks.

scipy degradation
-----------------
scipy is an optional accelerator everywhere in this library
(mirroring :mod:`~repro.circuits.linsolve`).  Without it,
``"auto"`` silently resolves to :class:`DenseBackend` — correct on
every netlist, merely slower on large ones — while an *explicit*
``backend="sparse"`` request raises :class:`~repro.errors.
SimulationError` immediately with instructions, rather than failing
deep inside an engine.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..errors import SimulationError
from .component import StampPattern
from .linsolve import ReusableLU

try:  # scipy is an optional accelerator; numpy covers every path.
    from scipy import sparse as _sparse
    from scipy.sparse.linalg import splu as _splu

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised via the no-scipy tests
    _sparse = None
    _splu = None
    _HAVE_SCIPY = False

__all__ = [
    "MatrixBackend",
    "DenseBackend",
    "SparseBackend",
    "SparseLU",
    "BlockDiagLU",
    "resolve_backend",
    "csr_scatter",
    "SPARSE_AUTO_THRESHOLD",
]


def csr_scatter(matrix: np.ndarray):
    """CSR view of a dense scatter/gather operator, or None sans scipy.

    The vectorized companion-state machinery multiplies by a
    ``(size, m)`` scatter operator with at most two entries per
    column; on distributed netlists the dense product is the single
    biggest per-step cost, so large assemblies swap in this CSR view
    when scipy allows.
    """
    if not _HAVE_SCIPY:
        return None
    return _sparse.csr_matrix(matrix)

#: Unknown count at which ``backend="auto"`` switches from dense to
#: sparse.  Below it the dense solve is a single cache-friendly BLAS
#: call; above it the O(n^2) dense triangular solves (and the O(n^3)
#: factorizations behind them) lose to the near-linear sparse path.
#: Measured on the ladder workloads of ``benchmarks/run_perf.py``:
#: dense still wins at ~60 unknowns, sparse wins ~1.6x at ~120 and
#: the gap widens to >10x by ~1200.
SPARSE_AUTO_THRESHOLD = 100


class MatrixBackend:
    """Protocol for a linear-algebra storage/factorization strategy.

    A backend turns the *value* half of a stamp stream into a matrix
    object (dense ndarray or CSR) and factors such matrices into
    objects exposing ``solve(rhs)`` (vector or multi-column) plus an
    ``n_factorizations`` counter for the engine diagnostics.
    """

    name: str = "abstract"
    #: Whether matrices produced by this backend are dense ndarrays
    #: (the engines use this to gate dense-only strategies like the
    #: chord Jacobian and per-iteration full restamping).
    is_dense: bool = False

    def finalize(self, pattern: StampPattern, values: np.ndarray):
        """Materialize one assembly's matrix from its value stream."""
        raise NotImplementedError

    def factor(self, matrix):
        """Factor a finalized matrix; returns a solver object."""
        raise NotImplementedError


class DenseBackend(MatrixBackend):
    """The historical dense path, bit-pinned to pre-backend results."""

    name = "dense"
    is_dense = True

    def finalize(self, pattern: StampPattern, values: np.ndarray) -> np.ndarray:
        G = pattern.dense(values)
        # Freeze: cached base matrices are shared by reference; a stamp
        # that (incorrectly) writes one must fail loudly.
        G.setflags(write=False)
        return G

    def factor(self, matrix: np.ndarray) -> ReusableLU:
        return ReusableLU(matrix)


class SparseLU:
    """A cached ``scipy.sparse.linalg.splu`` factorization.

    The sparse counterpart of :class:`~repro.circuits.linsolve.
    ReusableLU`: factor once, solve any number of (possibly multi-
    column) right-hand sides, degrade to a dense least-squares solve
    when the matrix is singular (floating nodes under fault injection)
    so callers never need their own error handling.
    """

    def __init__(self, matrix):
        self._matrix = matrix
        self._lu = None
        self._dense: Optional[np.ndarray] = None
        self._condest: Optional[float] = None
        self.n_factorizations = 1
        try:
            self._lu = _splu(matrix.tocsc())
        except (RuntimeError, ValueError):
            # Exactly singular: remember the densified matrix for the
            # minimum-norm fallback (rare, never the hot path).
            self._dense = matrix.toarray()

    @property
    def is_singular(self) -> bool:
        return self._lu is None

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        if self._lu is not None:
            solution = self._lu.solve(np.ascontiguousarray(rhs))
            if np.isfinite(solution).all() or not np.isfinite(rhs).all():
                return solution
            # splu accepted the factorization but a (near-)zero pivot
            # produced Inf/NaN at solve time: degrade to the dense
            # minimum-norm path, permanently.
            self._lu = None
            self._condest = None
            self._dense = self._matrix.toarray()
        solution, *_ = np.linalg.lstsq(self._dense, rhs, rcond=None)
        return solution

    def solve_transposed(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A.T @ x = rhs`` (condition-estimator support)."""
        if self._lu is not None:
            return self._lu.solve(np.ascontiguousarray(rhs), trans="T")
        if self._dense is None:  # pragma: no cover - defensive
            self._dense = self._matrix.toarray()
        solution, *_ = np.linalg.lstsq(self._dense.T, rhs, rcond=None)
        return solution

    def condest(self) -> float:
        """Estimated 1-norm condition number (Hager; cached).

        ``inf`` for singular/degraded factorizations.  Costs a few
        triangular solves against the existing LU and mutates nothing,
        so arming it never changes results.
        """
        if self._condest is not None:
            return self._condest
        if self._lu is None:
            self._condest = float("inf")
            return self._condest
        from .health import condest_from_solves

        norm_a = float(np.max(np.abs(self._matrix).sum(axis=0)))
        estimate = condest_from_solves(
            norm_a, self.solve, self.solve_transposed, self._matrix.shape[0]
        )
        self._condest = float(estimate) if np.isfinite(estimate) else float("inf")
        return self._condest


class BlockDiagLU:
    """Symbolic-once LU of ``S`` same-structure diagonal blocks.

    The batched lockstep engine factors ``S`` per-sample MNA matrices
    that share one CSR structure (the lockstep topology check
    guarantees it).  Factoring the assembled ``(S*n, S*n)``
    block-diagonal matrix with a single ``splu`` redoes the
    fill-reducing column analysis over the full structure on every
    ``dt`` entry; this class runs that *symbolic* phase once — the
    COLAMD ordering depends only on the sparsity pattern, which every
    block shares — and then performs only the *numeric* factorization
    per block, by pre-permuting each block's columns and handing
    ``splu`` ``permc_spec="NATURAL"``.

    Because each sample's block is factored independently of its
    batch-mates (same ordering, same pivot path for the same values),
    a sample's solution does not depend on which batch — or campaign
    *shard* — it rides in.  The sharded campaign merge relies on
    exactly this for bit-identical results.

    scipy's API has no pure-symbolic entry point, so the ordering is
    harvested from a throwaway ``splu`` of the first block; when even
    that fails (singular probe block) the per-block factorizations
    fall back to letting each ``splu`` analyse itself.
    """

    def __init__(self, blocks, perm_c: Optional[np.ndarray] = None):
        if not _HAVE_SCIPY:  # pragma: no cover - callers gate on scipy
            raise SimulationError(
                "BlockDiagLU requires scipy (scipy.sparse.linalg.splu)"
            )
        self.n = int(blocks[0].shape[0])
        if perm_c is None:
            perm_c = self.column_ordering(blocks[0])
        self.perm_c = perm_c
        self.n_factorizations = len(blocks)
        self._blocks = list(blocks)
        self._condest: Optional[np.ndarray] = None
        self._lus = []
        self._dense = []
        for block in blocks:
            csc = block.tocsc()
            try:
                if perm_c is not None:
                    lu = _splu(csc[:, perm_c], permc_spec="NATURAL")
                else:
                    lu = _splu(csc)
                self._lus.append(lu)
                self._dense.append(None)
            except (RuntimeError, ValueError):
                # Exactly singular block: remember it densified for the
                # minimum-norm fallback (mirrors SparseLU; the batched
                # engine raises BatchIncompatible before solving).
                self._lus.append(None)
                self._dense.append(block.toarray())

    @staticmethod
    def column_ordering(block) -> Optional[np.ndarray]:
        """Fill-reducing column permutation of one block's structure.

        Purely structural, so one call covers every same-pattern block
        (and every later ``dt`` entry).  Returns ``None`` when the
        probe factorization fails — callers then let each block's
        ``splu`` run its own analysis.
        """
        try:
            return _splu(block.tocsc()).perm_c
        except (RuntimeError, ValueError):
            return None

    @property
    def is_singular(self) -> bool:
        return any(lu is None for lu in self._lus)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve the block-diagonal system for a stacked RHS.

        ``rhs`` is ``(S*n,)`` or ``(S*n, k)`` — the same contract as
        the single big-matrix :class:`SparseLU` this replaces.
        """
        n = self.n
        out = np.empty(rhs.shape, dtype=float)
        perm = self.perm_c
        for s, lu in enumerate(self._lus):
            seg = np.ascontiguousarray(rhs[s * n : (s + 1) * n])
            if lu is None:
                sol, *_ = np.linalg.lstsq(self._dense[s], seg, rcond=None)
                out[s * n : (s + 1) * n] = sol
                continue
            if perm is None:
                sol = lu.solve(seg)
            else:
                # Factored A[:, perm], so A x = b  =>  x[perm] = y.
                sol = np.empty(seg.shape, dtype=float)
                sol[perm] = lu.solve(seg)
            if not np.isfinite(sol).all() and np.isfinite(seg).all():
                # Zero pivot survived factorization of this block:
                # degrade it (and only it) to minimum-norm, permanently.
                self._lus[s] = None
                self._dense[s] = self._blocks[s].toarray()
                self._condest = None
                sol, *_ = np.linalg.lstsq(self._dense[s], seg, rcond=None)
            out[s * n : (s + 1) * n] = sol
        return out

    def solve_block_transposed(self, s: int, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A_s.T @ x = rhs`` for one block (condest support)."""
        lu = self._lus[s]
        if lu is None:
            dense = self._dense[s]
            if dense is None:  # pragma: no cover - defensive
                dense = self._blocks[s].toarray()
            sol, *_ = np.linalg.lstsq(dense.T, rhs, rcond=None)
            return sol
        perm = self.perm_c
        if perm is None:
            return lu.solve(np.ascontiguousarray(rhs), trans="T")
        # Factored M = A[:, perm] = A P, so A.T x = c  <=>  M.T x = c[perm].
        return lu.solve(np.ascontiguousarray(rhs[perm]), trans="T")

    def solve_block(self, s: int, rhs: np.ndarray) -> np.ndarray:
        """Solve one block's system (condest support)."""
        lu = self._lus[s]
        if lu is None:
            dense = self._dense[s]
            if dense is None:  # pragma: no cover - defensive
                dense = self._blocks[s].toarray()
            sol, *_ = np.linalg.lstsq(dense, rhs, rcond=None)
            return sol
        perm = self.perm_c
        if perm is None:
            return lu.solve(np.ascontiguousarray(rhs))
        sol = np.empty(rhs.shape, dtype=float)
        sol[perm] = lu.solve(np.ascontiguousarray(rhs))
        return sol

    def condest_blocks(self) -> np.ndarray:
        """Per-block estimated 1-norm condition numbers, ``(S,)``.

        Hager estimate per block against the cached numeric LU;
        ``inf`` for singular/degraded blocks.  Cached; read-only.
        """
        if self._condest is not None:
            return self._condest
        from .health import condest_from_solves

        out = np.empty(len(self._lus))
        for s, lu in enumerate(self._lus):
            if lu is None:
                out[s] = np.inf
                continue
            norm_a = float(np.max(np.abs(self._blocks[s]).sum(axis=0)))
            out[s] = condest_from_solves(
                norm_a,
                lambda b, s=s: self.solve_block(s, b),
                lambda b, s=s: self.solve_block_transposed(s, b),
                self.n,
            )
        self._condest = out
        return out


class SparseBackend(MatrixBackend):
    """CSR storage with splu factorization reuse.

    Construction fails fast with :class:`~repro.errors.
    SimulationError` when scipy is unavailable; use
    :func:`resolve_backend` with ``"auto"`` for the silent dense
    fallback instead.
    """

    name = "sparse"
    is_dense = False

    def __init__(self):
        if not _HAVE_SCIPY:
            raise SimulationError(
                "backend='sparse' requires scipy (scipy.sparse.linalg.splu); "
                "install scipy or use backend='auto'/'dense', which run "
                "every netlist on the dense path"
            )

    def finalize(self, pattern: StampPattern, values: np.ndarray):
        data, indices, indptr = pattern.csr_arrays(values)
        return _sparse.csr_matrix(
            (data, indices, indptr), shape=(pattern.size, pattern.size)
        )

    def factor(self, matrix) -> SparseLU:
        return SparseLU(matrix)

    @staticmethod
    def csr_from_coo(
        rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, size: int
    ):
        """One-shot CSR from raw triplets (duplicates summed).

        Used by the analyses that re-assemble per solve (DC Newton
        iterations, AC frequency points) where caching a
        :class:`~repro.circuits.component.StampPattern` buys nothing.
        """
        return _sparse.coo_matrix(
            (vals, (rows, cols)), shape=(size, size)
        ).tocsr()

    @staticmethod
    def block_diag(blocks):
        """Block-diagonal CSC of per-sample matrices (batched engine)."""
        return _sparse.block_diag(blocks, format="csc")


#: Singleton instances — backends are stateless strategy objects.
_DENSE = DenseBackend()


def resolve_backend(
    backend: Union[str, MatrixBackend, None], size: int
) -> MatrixBackend:
    """Resolve a backend spec to a strategy instance.

    ``"auto"`` (or ``None``) picks :class:`DenseBackend` below
    :data:`SPARSE_AUTO_THRESHOLD` unknowns — or always, when scipy is
    missing — and :class:`SparseBackend` at or above the threshold.
    ``"dense"``/``"sparse"`` force the choice (sparse raising a clear
    :class:`~repro.errors.SimulationError` without scipy); an already-
    constructed :class:`MatrixBackend` passes through untouched.
    """
    if isinstance(backend, MatrixBackend):
        return backend
    if backend is None:
        backend = "auto"
    if backend == "auto":
        if _HAVE_SCIPY and size >= SPARSE_AUTO_THRESHOLD:
            return SparseBackend()
        return _DENSE
    if backend == "dense":
        return _DENSE
    if backend == "sparse":
        return SparseBackend()
    raise SimulationError(
        f"unknown backend {backend!r}; expected 'auto', 'dense', or 'sparse'"
    )
