"""Level-1 (square-law) MOSFET with bulk terminal and body diodes.

This is the device model behind the supply-loss experiments (Fig 10/11,
Fig 17/18 of the paper).  Those are DC curves dominated by threshold
switching and body-diode conduction, which the level-1 model captures.
Channel capacitances are not modelled (the experiments are static).

Terminal order is ``(drain, gate, source, bulk)``.  NMOS and PMOS share
one implementation via a polarity transform; drain/source are swapped
internally so the square-law equations always see ``vds >= 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import NetlistError
from .component import ACStampContext, Component, StampContext
from .diode import DEFAULT_IS, VT_300K, junction_iv

__all__ = ["MosfetParams", "Mosfet", "NMOS_DEFAULT", "PMOS_DEFAULT"]


@dataclass(frozen=True)
class MosfetParams:
    """Level-1 model card.

    Attributes
    ----------
    polarity:
        ``+1`` for NMOS, ``-1`` for PMOS.
    beta:
        Transconductance factor ``kp * W / L`` in A/V^2.
    vt0:
        Zero-bias threshold voltage (positive for both polarities).
    lam:
        Channel-length modulation (1/V).
    gamma:
        Body-effect coefficient (V^0.5); 0 disables the body effect.
    phi:
        Surface potential used with ``gamma``.
    i_sat_body:
        Saturation current of the bulk junction diodes.
    """

    polarity: int
    beta: float = 1e-3
    vt0: float = 0.6
    lam: float = 0.01
    gamma: float = 0.0
    phi: float = 0.7
    i_sat_body: float = DEFAULT_IS

    def __post_init__(self) -> None:
        if self.polarity not in (+1, -1):
            raise NetlistError("polarity must be +1 (NMOS) or -1 (PMOS)")
        if self.beta <= 0:
            raise NetlistError("beta must be positive")
        if self.vt0 < 0:
            raise NetlistError("vt0 must be non-negative (magnitude)")
        if self.lam < 0 or self.gamma < 0 or self.phi <= 0:
            raise NetlistError("lam/gamma must be >= 0 and phi > 0")


NMOS_DEFAULT = MosfetParams(polarity=+1, beta=2e-3, vt0=0.55, lam=0.02)
PMOS_DEFAULT = MosfetParams(polarity=-1, beta=1e-3, vt0=0.65, lam=0.02)


class Mosfet(Component):
    """Square-law MOSFET with body diodes; terminals (d, g, s, b)."""

    def __init__(self, name: str, d: str, g: str, s: str, b: str, params: MosfetParams):
        super().__init__(name, (d, g, s, b))
        self.params = params

    def is_nonlinear(self) -> bool:
        return True

    # -- core square-law evaluation ------------------------------------------

    def _channel(self, vg: float, vd: float, vs: float, vb: float) -> Tuple[float, float, float, float, bool]:
        """Return (ids', gm, gds, gmbs, swapped) in the effective domain.

        ``ids'`` is the effective-domain (NMOS-like) channel current from
        the internal drain to the internal source; ``swapped`` says
        whether internal drain/source are the reverse of the terminals.
        """
        p = self.params.polarity
        vd_e, vg_e, vs_e, vb_e = p * vd, p * vg, p * vs, p * vb
        swapped = vd_e < vs_e
        if swapped:
            vd_e, vs_e = vs_e, vd_e
        vgs = vg_e - vs_e
        vds = vd_e - vs_e
        # Threshold with optional body effect.
        vt = self.params.vt0
        gmbs = 0.0
        if self.params.gamma > 0.0:
            vsb = max(vs_e - vb_e, -0.5 * self.params.phi)
            sqrt_term = math.sqrt(self.params.phi + vsb)
            vt = vt + self.params.gamma * (sqrt_term - math.sqrt(self.params.phi))
            dvt_dvsb = self.params.gamma / (2.0 * sqrt_term)
        else:
            dvt_dvsb = 0.0
        vov = vgs - vt
        beta = self.params.beta
        lam = self.params.lam
        if vov <= 0.0:
            ids = 0.0
            gm = 0.0
            gds = 0.0
        elif vds < vov:
            clm = 1.0 + lam * vds
            ids = beta * (vov * vds - 0.5 * vds * vds) * clm
            gm = beta * vds * clm
            gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * lam
        else:
            clm = 1.0 + lam * vds
            ids = 0.5 * beta * vov * vov * clm
            gm = beta * vov * clm
            gds = 0.5 * beta * vov * vov * lam
        if gm > 0.0 and dvt_dvsb > 0.0:
            gmbs = gm * dvt_dvsb
        return ids, gm, gds, gmbs, swapped

    # -- stamping ---------------------------------------------------------------

    def stamp(self, ctx: StampContext) -> None:
        nd, ng, ns, nb = self._n
        vd, vg, vs, vb = (ctx.v(i) for i in self._n)
        ids_e, gm, gds, gmbs, swapped = self._channel(vg, vd, vs, vb)
        p = self.params.polarity
        if swapped:
            nd_i, ns_i = ns, nd
            vd_i, vs_i = vs, vd
        else:
            nd_i, ns_i = nd, ns
            vd_i, vs_i = vd, vs
        # Actual current from internal drain to internal source.
        i_actual = p * ids_e
        sys = ctx.system
        gs_total = gm + gds + gmbs
        sys.add_G(nd_i, ng, gm)
        sys.add_G(nd_i, nd_i, gds)
        sys.add_G(nd_i, nb, gmbs)
        sys.add_G(nd_i, ns_i, -gs_total)
        sys.add_G(ns_i, ng, -gm)
        sys.add_G(ns_i, nd_i, -gds)
        sys.add_G(ns_i, nb, -gmbs)
        sys.add_G(ns_i, ns_i, gs_total)
        i_eq = i_actual - gm * vg - gds * vd_i - gmbs * vb + gs_total * vs_i
        sys.stamp_current(nd_i, ns_i, i_eq)
        # Leakage to keep isolated drains solvable.
        sys.stamp_conductance(nd, ns, ctx.gmin)
        # Body diodes: bulk->source and bulk->drain for NMOS, reversed
        # for PMOS.
        self._stamp_body_diode(ctx, nb, ns, vb, vs)
        self._stamp_body_diode(ctx, nb, nd, vb, vd)

    def _stamp_body_diode(self, ctx: StampContext, nb: int, nx: int, vb: float, vx: float) -> None:
        if self.params.polarity > 0:
            anode, cathode, v = nb, nx, vb - vx
        else:
            anode, cathode, v = nx, nb, vx - vb
        i, g = junction_iv(v, self.params.i_sat_body)
        g += ctx.gmin
        i += ctx.gmin * v
        sys = ctx.system
        sys.stamp_conductance(anode, cathode, g)
        sys.stamp_current(anode, cathode, i - g * v)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        nd, ng, ns, nb = self._n
        vd, vg, vs, vb = (ctx.v_op(i) for i in self._n)
        _ids, gm, gds, gmbs, swapped = self._channel(vg, vd, vs, vb)
        if swapped:
            nd_i, ns_i = ns, nd
        else:
            nd_i, ns_i = nd, ns
        gs_total = gm + gds + gmbs
        ctx.add_G(nd_i, ng, gm)
        ctx.add_G(nd_i, nd_i, gds)
        ctx.add_G(nd_i, nb, gmbs)
        ctx.add_G(nd_i, ns_i, -gs_total)
        ctx.add_G(ns_i, ng, -gm)
        ctx.add_G(ns_i, nd_i, -gds)
        ctx.add_G(ns_i, nb, -gmbs)
        ctx.add_G(ns_i, ns_i, gs_total)
        # Body diodes small-signal conductance.
        for nx, vx in ((ns, vs), (nd, vd)):
            if self.params.polarity > 0:
                v = vb - vx
            else:
                v = vx - vb
            _i, g = junction_iv(v, self.params.i_sat_body)
            ctx.stamp_admittance(nb, nx, g)

    # -- measurement -----------------------------------------------------------

    def channel_current(self, x: np.ndarray) -> float:
        """Channel current flowing into the drain terminal (excl. diodes)."""
        vd, vg, vs, vb = (float(x[i]) if i >= 0 else 0.0 for i in self._n)
        ids_e, _gm, _gds, _gmbs, swapped = self._channel(vg, vd, vs, vb)
        i_actual = self.params.polarity * ids_e
        # i_actual flows internal-drain -> internal-source; into the
        # *terminal* drain it is negated when swapped.
        return -i_actual if swapped else i_actual
