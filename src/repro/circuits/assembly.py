"""Incremental MNA assembly for the transient engine.

The seed engine rebuilt the full dense system with a Python loop over
every component at every Newton iteration of every step.  For the
circuits this library simulates — the Fig 1 oscillator is one
nonlinear VCCS among six components — that loop is ~85 % redundant:
linear stamps never change during a run.

:class:`TransientAssembly` exploits the component stamp split (see
:class:`~repro.circuits.component.Component`) to assemble each part of
the system exactly as often as it can change:

* **once per step size** — the base matrix ``G_base``: all linear
  matrix stamps (R, switches, L/C companion conductances, source
  branch rows, VCVS/VCCS) plus the global ``gmin`` diagonal,
  recorded as a COO triplet stream and finalized by the run's
  :class:`~repro.circuits.backend.MatrixBackend` — dense (frozen
  ndarray + :class:`~repro.circuits.linsolve.ReusableLU`) or CSR
  (``splu``), with the stream's sparsity pattern computed once per
  netlist and shared by every step size.  Every setup-dependent
  product — the base matrix, its cached factorization, the vectorized
  companion coefficients, the rank-k solve data — lives in a cache
  entry keyed by the full ``(dt, method, order)`` integration setup;
  a small LRU of those entries lets the adaptive step/order
  controller revisit its few quantized setups without refactorizing
  anything (:meth:`TransientAssembly.set_dt`).  A fixed-step run
  simply never leaves its first entry.  Multistep (BDF/Gear) methods
  additionally keep a committed-state history ring whose
  spacing-dependent weights are recomputed per step — deliberately
  *outside* the cache entries, so non-uniform history never thrashes
  the LRU.
* **once per step** — the linear right-hand side: source values at the
  step time plus the reactive companion currents, evaluated from the
  integrator state with vectorized numpy instead of per-component
  Python (plain :class:`~repro.circuits.elements.Capacitor` and
  :class:`~repro.circuits.elements.Inductor` states live in flat
  arrays);
* **once per Newton iteration** — only the nonlinear (or split-
  incapable) components, restamped onto copies of the cached parts.

The assembly also recognizes **low-rank Jacobian** special cases: when
the only full-stamp components are ``k`` :class:`~repro.circuits.
controlled.NonlinearVCCS` devices, the Jacobian is the cached base
matrix plus a rank-``k`` update ``U diag(gm) V^T`` with constant
``U, V``.  For ``k = 1`` each Newton solve collapses to a
Sherman–Morrison update; for small ``k`` (2–4, the mirror-cascade
netlists) to a Woodbury identity around one cached factorization — no
matrix assembly or LAPACK factorization at all in the inner loop.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .backend import MatrixBackend, resolve_backend, triplet_scatter
from .component import (
    Component,
    MNASystem,
    StampContext,
    StampPattern,
    TripletSystem,
)
from .controlled import NonlinearVCCS
from .elements import Capacitor, Inductor
from .integration import IntegrationMethod, resolve_method
from .linsolve import ReusableLU, solve_dense
from .netlist import Circuit

__all__ = ["DtCache", "TransientAssembly"]

#: Maximum number of *additional* NonlinearVCCS devices the Woodbury
#: fast path covers (k in 2..4); beyond that the dense general Newton
#: path wins because the small-matrix bookkeeping stops being small.
MAX_WOODBURY_RANK = 4

#: System size from which the companion-RHS scatter switches from a
#: dense mat-vec to a CSR product.  The dense product is O(size * m)
#: with m reactive elements — on a distributed ladder that is O(n^2)
#: per step, dwarfing the sparse solve it feeds.  Kept well above
#: every lumped netlist so the small-circuit hot path (and its
#: bit-pinned goldens) is untouched.
_SPARSE_SCATTER_MIN = 128


class _ReactiveCoeffs:
    """Per-``(dt, method, order)`` companion coefficients of a
    :class:`_ReactiveSet`.

    The integrator *state* (previous voltage/current of every plain
    cap and inductor) is step-size independent; these vectors are the
    only part of the vectorized companion model that changes when the
    step controller picks a new ``dt`` (or the order controller a new
    order).  One-step methods cache the full weight vectors
    (``alpha``/``beta``) because their weights are spacing-
    independent; multistep (BDF/Gear) entries cache only the
    spacing-independent half — ``gcol``, the per-element companion
    conductances/resistances — and the history weights are recomputed
    per step from the committed-time ring buffer (see
    :meth:`IntegrationMethod.step_weights`), which is exactly what
    keeps non-uniform-history coefficient changes out of the
    per-``dt`` LRU.
    """

    __slots__ = (
        "alpha", "beta", "upd_g", "upd_m", "gcol", "method", "dt", "order"
    )

    def __init__(
        self,
        alpha: Optional[np.ndarray],
        beta: Optional[np.ndarray],
        upd_g: Optional[np.ndarray],
        upd_m: float,
        gcol: Optional[np.ndarray] = None,
        method: Optional[IntegrationMethod] = None,
        dt: float = 0.0,
        order: int = 0,
    ):
        self.alpha = alpha
        self.beta = beta
        self.upd_g = upd_g
        self.upd_m = upd_m
        self.gcol = gcol
        self.method = method
        self.dt = dt
        self.order = order


class _HistoryRing:
    """Committed-state ring + weight memo for one multistep integrator.

    Both transient assemblies share this helper: the per-sample
    :class:`_ReactiveSet` stores ``(m,)`` state rows, the batched
    lockstep assembly ``(S, m)`` stacks — every operation indexes the
    element axis with ``...``, so the two layouts run the exact same
    code.  History is stored newest-first in *formula* form (``val``
    holds each element's natural state — cap voltage, inductor
    current — and ``der`` its conjugate derivative), so the per-step
    companion term is one weighted accumulation.

    The ring also owns the spacing-dependent weight memo.  Weights
    depend only on ``(dt, order)`` and the history spacing *relative*
    to the current time — Lagrange interpolation is translation
    invariant — so the memo keys on the relative offsets and the
    method is handed times shifted to ``t_now = 0``.  On the
    quantized adaptive grid the same ``(dt, offsets)`` products recur
    constantly (every uniform stretch is one key), which is what keeps
    multistep runs from re-deriving their interpolation weights on
    every single step.
    """

    __slots__ = (
        "state_shape", "depth", "fv", "fd", "t", "fill", "t_now", "_w_cache"
    )

    def __init__(self, state_shape: Tuple[int, ...]):
        self.state_shape = tuple(state_shape)
        self.depth = 0
        #: Formula-form buffers with the *current* state in row 0 and
        #: the committed history in rows 1..fill — the companion term
        #: is then a single weighted contraction over the leading axis.
        self.fv: Optional[np.ndarray] = None
        self.fd: Optional[np.ndarray] = None
        self.t: Optional[np.ndarray] = None
        self.fill = 0
        #: Time of the current committed state (weights and pushes
        #: read it; one-step methods just carry it).
        self.t_now = 0.0
        self._w_cache: Dict[tuple, tuple] = {}

    @property
    def val(self) -> Optional[np.ndarray]:
        """History values, newest first (``val[0]`` is one step back)."""
        return None if self.fv is None else self.fv[1:]

    @property
    def der(self) -> Optional[np.ndarray]:
        """History derivatives, newest first."""
        return None if self.fd is None else self.fd[1:]

    def enable(self, depth: int) -> None:
        """Allocate ring buffers for ``depth`` committed points total
        (current state + ``depth - 1`` older entries).

        Growing a live ring (a mid-run ``set_method`` to a deeper
        method) copies the surviving entries over, so the committed
        history stays valid rather than silently pointing the fill
        level at freshly zeroed rows.
        """
        extra = depth - 1
        if extra <= 0 or extra <= self.depth:
            return
        old = (self.fv, self.fd, self.t, self.fill)
        self.depth = extra
        self.fv = np.zeros((extra + 1,) + self.state_shape)
        self.fd = np.zeros((extra + 1,) + self.state_shape)
        self.t = np.zeros(extra)
        if old[0] is not None:
            keep = old[3]
            self.fv[: keep + 1] = old[0][: keep + 1]
            self.fd[: keep + 1] = old[1][: keep + 1]
            self.t[:keep] = old[2][:keep]

    @property
    def points(self) -> int:
        """Committed states available, including the current one."""
        return 1 + self.fill

    def times(self) -> tuple:
        """Committed-state times, newest first (``[0]`` is current)."""
        return (self.t_now,) + tuple(float(t) for t in self.t[: self.fill])

    def reset(self) -> None:
        """Drop the older entries (the current state stays valid);
        used across breakpoints, where interpolating through a
        discontinuity would poison the multistep formula."""
        self.fill = 0

    def restart(self) -> None:
        """Back to an empty ring at t=0 (run (re)initialization)."""
        self.fill = 0
        self.t_now = 0.0
        self._w_cache.clear()

    def clear_weights(self) -> None:
        """Invalidate memoized weights (method switch on a live run)."""
        self._w_cache.clear()

    def val_now(self, v: np.ndarray, i: np.ndarray, nc: int) -> np.ndarray:
        """Current state in formula form (cap v, inductor i)."""
        val = np.empty_like(v)
        val[..., :nc] = v[..., :nc]
        val[..., nc:] = i[..., nc:]
        return val

    def set_current(self, v: np.ndarray, i: np.ndarray, nc: int) -> None:
        """Refresh row 0 from the live state arrays (after a commit,
        a restore, or an init; no-op semantics require depth > 0)."""
        self.fv[0][..., :nc] = v[..., :nc]
        self.fv[0][..., nc:] = i[..., nc:]
        self.fd[0][..., :nc] = i[..., :nc]
        self.fd[0][..., nc:] = v[..., nc:]

    def push(self) -> None:
        """Ring-push the current state (row 0) into the history; the
        caller refreshes row 0 via :meth:`set_current` afterwards."""
        if not self.depth:
            return
        self.fv[1:] = self.fv[:-1]
        self.fd[1:] = self.fd[:-1]
        self.t[1:] = self.t[:-1]
        self.t[0] = self.t_now
        self.fill = min(self.fill + 1, self.depth)

    def companion_term(
        self, wv: np.ndarray, wd: np.ndarray, gcol: np.ndarray
    ) -> np.ndarray:
        """``gcol * sum_k wv[k]*val_k + sum_k wd[k]*der_k`` over the
        current state (row 0) and the committed history, as a single
        weighted contraction per buffer (shape-agnostic: the leading
        row axis is flattened into one gemv regardless of whether the
        state rows are ``(m,)`` or ``(S, m)``)."""
        rows = self.fv[: len(wv)]
        term = gcol * (wv @ rows.reshape(len(wv), -1)).reshape(rows.shape[1:])
        if wd.any():
            rows = self.fd[: len(wd)]
            term += (wd @ rows.reshape(len(wd), -1)).reshape(rows.shape[1:])
        return term

    def step_weights(self, co) -> tuple:
        """Memoized ``(wv, wd)`` weight arrays for the active setup
        and history.

        Keyed by the *relative* history offsets, so every uniform
        stretch of a run — regardless of where on the time axis it
        sits — resolves to one cached entry.
        """
        offsets = self.t_now - self.t[: self.fill]
        key = (co.dt, co.order, offsets.tobytes())
        w = self._w_cache.get(key)
        if w is None:
            times = (0.0,) + tuple(-float(off) for off in offsets)
            wv, wd = co.method.step_weights(co.dt, co.order, times)
            w = (np.asarray(wv, dtype=float), np.asarray(wd, dtype=float))
            if len(self._w_cache) > 64:
                self._w_cache.clear()
            self._w_cache[key] = w
        return w

    def bootstrap(self, dt: float, derivative: np.ndarray) -> int:
        """Synthesize a full committed history behind the current state.

        Fills every history row with the first-order backward
        extrapolation ``val(t_now - k*dt) = val(t_now) - k*dt*val'`` —
        the same accuracy class as one trapezoidal startup step, which
        is why a multistep phase entered mid-run through this bootstrap
        starts at its full order instead of ramping through the
        ``usable_order`` history clamp.  ``derivative`` is the
        per-element time derivative of the formula-form value (cap
        ``dv/dt``, inductor ``di/dt``); the derivative rows are held
        constant (exact for the linear-in-time states the
        extrapolation itself assumes).  Returns the number of history
        rows synthesized (0 when the ring has no depth).
        """
        if not self.depth:
            return 0
        for k in range(1, self.depth + 1):
            self.fv[k] = self.fv[0] - (k * dt) * derivative
            self.fd[k] = self.fd[0]
            self.t[k - 1] = self.t_now - k * dt
        self.fill = self.depth
        return self.depth

    def snapshot(self) -> tuple:
        """Capture ``(t_now, history)`` so a trial step can be undone."""
        if not self.depth:
            return (self.t_now, None)
        return (
            self.t_now,
            (
                self.val[: self.fill].copy(),
                self.der[: self.fill].copy(),
                self.t[: self.fill].copy(),
                self.fill,
            ),
        )

    def restore(self, snap: tuple) -> None:
        """Undo every ring change since the matching snapshot."""
        t_now, hist = snap
        self.t_now = t_now
        if hist is not None:
            val, der, t, fill = hist
            self.val[:fill] = val
            self.der[:fill] = der
            self.t[:fill] = t
            self.fill = fill


class _ReactiveSet:
    """Vectorized companion-model state for plain capacitors/inductors.

    Stores the (previous voltage, previous current) integrator state of
    every plain :class:`Capacitor` and :class:`Inductor` in flat numpy
    arrays, with a scatter matrix so that the per-step companion RHS
    and the post-step state update are a handful of vector operations
    instead of a Python loop over components.  The ``(dt, method)``-
    dependent coefficient vectors are built by :meth:`coeffs` and owned
    by the per-``dt`` cache entries of :class:`TransientAssembly`.
    """

    def __init__(self, caps: List[Capacitor], inds: List[Inductor], size: int):
        self.caps = caps
        self.inds = inds
        self.size = size
        n = len(caps) + len(inds)
        self.n = n
        # Gather indices; ground (-1) redirects to a padded zero slot.
        pad = size
        self.a_idx = np.array(
            [c._n[0] if c._n[0] >= 0 else pad for c in caps]
            + [l._n[0] if l._n[0] >= 0 else pad for l in inds],
            dtype=np.intp,
        )
        self.b_idx = np.array(
            [c._n[1] if c._n[1] >= 0 else pad for c in caps]
            + [l._n[1] if l._n[1] >= 0 else pad for l in inds],
            dtype=np.intp,
        )
        self.br_idx = np.array([l._b[0] for l in inds], dtype=np.intp)
        self.n_caps = len(caps)

        # Scatter matrix: rhs += S @ term.  A cap's ieq flows a->b
        # (rhs[a] -= ieq, rhs[b] += ieq); an inductor's term lands on
        # its own branch row.
        rows: List[int] = []
        s_cols: List[int] = []
        s_vals: List[float] = []
        for j, c in enumerate(caps):
            a, b = c._n
            if a >= 0:
                rows.append(a)
                s_cols.append(j)
                s_vals.append(-1.0)
            if b >= 0:
                rows.append(b)
                s_cols.append(j)
                s_vals.append(1.0)
        for j, l in enumerate(inds):
            rows.append(l._b[0])
            s_cols.append(len(caps) + j)
            s_vals.append(1.0)
        #: CSR scatter for large (distributed) systems, where the
        #: dense mat-vec is O(size * m) of mostly zeros — built
        #: straight from the triplets, because the dense operator
        #: itself is a multi-gigabyte intermediate at mesh scale.
        self.scatter_csr = (
            triplet_scatter(rows, s_cols, s_vals, (size, n))
            if n and size >= _SPARSE_SCATTER_MIN
            else None
        )
        if self.scatter_csr is None:
            S = np.zeros((size, n))
            np.add.at(S, (rows, s_cols), s_vals)
            self.scatter = S
        else:
            # Never materialized; every consumer goes through the CSR.
            self.scatter = None

        # State arrays, filled by init_state().
        self.v = np.zeros(n)
        self.i = np.zeros(n)

        # Multistep history ring (older committed states, newest
        # first), allocated by enable_history() only when the run's
        # integration method needs depth > 1; the one-step hot path
        # never touches it.  The ring logic (and the spacing-dependent
        # weight memo) is shared with the batched lockstep assembly
        # through :class:`_HistoryRing` — only the state shape
        # differs.  The shipped BDF members weight values only
        # (wd == 0); the derivative ring is the extension point for
        # derivative-feedback multistep members (Adams-Moulton, a
        # trapezoidal history bootstrap) and costs one small copy per
        # commit.
        self.ring = _HistoryRing((n,))
        #: Per-element energy-storage values (C for caps, L for
        #: inductors), built lazily by :meth:`bootstrap_history` to
        #: convert the conjugate-derivative row into state derivatives.
        self._energy: Optional[np.ndarray] = None
        #: Single-slot companion-term memo: within one candidate step
        #: the identical term is needed by the step RHS *and* the
        #: commit.  ``(dt, order, t_now, fill)`` pins the state —
        #: ``t_now`` strictly advances on every commit, and a restored
        #: snapshot restores exactly the state the memo was computed
        #: from.
        self._cterm: Optional[tuple] = None

    # -- multistep history ------------------------------------------------

    def enable_history(self, depth: int) -> None:
        """Allocate ring buffers for ``depth`` committed points total
        (current state + ``depth - 1`` older entries)."""
        self.ring.enable(depth)
        if self.ring.depth:
            self.ring.set_current(self.v, self.i, self.n_caps)

    # Read views of the ring for diagnostics and white-box tests; all
    # mutation goes through the ring itself.
    @property
    def h_depth(self) -> int:
        return self.ring.depth

    @property
    def h_val(self) -> Optional[np.ndarray]:
        return self.ring.val

    @property
    def h_der(self) -> Optional[np.ndarray]:
        return self.ring.der

    @property
    def h_t(self) -> Optional[np.ndarray]:
        return self.ring.t

    @property
    def h_len(self) -> int:
        return self.ring.fill

    @property
    def t_now(self) -> float:
        return self.ring.t_now

    @property
    def history_points(self) -> int:
        """Committed states available, including the current one."""
        return self.ring.points

    def history_times(self) -> tuple:
        """Committed-state times, newest first (``[0]`` is current)."""
        return self.ring.times()

    def reset_history(self) -> None:
        """Drop the older entries (the current state stays valid);
        used across breakpoints, where interpolating through a
        discontinuity would poison the multistep formula."""
        self.ring.reset()

    def bootstrap_history(self, dt: float) -> int:
        """One-step trap bootstrap of the multistep history ring.

        The conjugate-derivative row the ring already carries (cap
        current ``i = C v'``, inductor voltage ``v = L i'``) *is* the
        state derivative up to the element value, so a consistent
        uniform history at spacing ``dt`` can be synthesized from the
        current committed state alone — no extra solves.  A Gear phase
        entered mid-run at order >= 2 then starts from this history at
        its full target order instead of the classic startup ramp.
        Returns the number of history rows synthesized.
        """
        if not self.ring.depth or not self.n:
            return 0
        if self._energy is None:
            self._energy = np.concatenate(
                [
                    np.array([c.capacitance for c in self.caps], dtype=float),
                    np.array([l.inductance for l in self.inds], dtype=float),
                ]
            )
        self.ring.set_current(self.v, self.i, self.n_caps)
        filled = self.ring.bootstrap(dt, self.ring.fd[0] / self._energy)
        self._cterm = None
        return filled

    def _val_now(self) -> np.ndarray:
        """Current state in formula form (cap v, inductor i)."""
        return self.ring.val_now(self.v, self.i, self.n_caps)

    # -- coefficients -------------------------------------------------------

    def coeffs(
        self, dt: float, method: IntegrationMethod, order: int
    ) -> _ReactiveCoeffs:
        """Companion coefficients for one ``(dt, method, order)``."""
        base = method.base_coeffs(order)
        geq = np.array(
            [c.companion_conductance(dt, base) for c in self.caps], dtype=float
        )
        req = np.array(
            [l.companion_resistance(dt, base) for l in self.inds], dtype=float
        )
        n_inds = len(self.inds)
        if method.is_multistep:
            # Spacing-dependent weights are per-step products; only
            # the companion conductances belong to the cache entry.
            gcol = np.concatenate([geq, req])
            return _ReactiveCoeffs(
                None, None, None, 0.0,
                gcol=gcol, method=method, dt=dt, order=order,
            )
        wv0, wd0 = base.wv0, base.wd0
        # Companion RHS term per element: alpha*v_state + beta*i_state.
        #   cap:  ieq = wv0*geq*v + wd0*i
        #   ind:  rhs = wv0*req*i + wd0*v
        alpha = np.concatenate([wv0 * geq, np.full(n_inds, wd0)])
        beta = np.concatenate([np.full(len(self.caps), wd0), wv0 * req])
        # State-update coefficients: i' = upd_g*(v'-v) - upd_m*i for
        # caps (upd_g is lead*C/dt); inductor slots are placeholders,
        # overwritten by their branch currents.
        upd_g = np.concatenate([geq, np.zeros(n_inds)])
        return _ReactiveCoeffs(alpha, beta, upd_g, float(-wd0))

    def init_state(self, x: np.ndarray) -> None:
        """Seed integrator state from a converged starting point.

        Delegates to each component's ``init_state`` so the ``ic``
        handling stays in exactly one place.
        """
        for j, c in enumerate(self.caps):
            st = c.init_state(x)
            self.v[j], self.i[j] = st.v, st.i
        for j, l in enumerate(self.inds):
            st = l.init_state(x)
            self.v[self.n_caps + j], self.i[self.n_caps + j] = st.v, st.i
        self.ring.restart()
        if self.ring.depth:
            self.ring.set_current(self.v, self.i, self.n_caps)
        self._cterm = None

    def step_weights(self, co: _ReactiveCoeffs) -> tuple:
        """Memoized ``(wv, wd)`` for the active setup and history
        (the :class:`_HistoryRing` relative-offset memo)."""
        return self.ring.step_weights(co)

    def _companion_term(self, co: _ReactiveCoeffs) -> np.ndarray:
        """Per-element multistep companion term (cap ``ieq`` / inductor
        branch RHS), from the method's history weights.

        Single-slot memoized: the step RHS and the commit of the same
        candidate evaluate the identical term (the solve in between
        never touches integrator state), and callers treat the
        returned vector as read-only.
        """
        ring = self.ring
        memo = self._cterm
        if (
            memo is not None
            and memo[0] == co.dt
            and memo[1] == co.order
            and memo[2] == ring.t_now
            and memo[3] == ring.fill
        ):
            return memo[4]
        wv, wd = self.step_weights(co)
        term = ring.companion_term(wv, wd, co.gcol)
        self._cterm = (co.dt, co.order, ring.t_now, ring.fill, term)
        return term

    def companion_rhs(self, co: _ReactiveCoeffs) -> np.ndarray:
        """The companion RHS of the current state (fresh vector)."""
        if not self.n:
            return np.zeros(self.size)
        if co.gcol is None:
            term = co.alpha * self.v + co.beta * self.i
        else:
            term = self._companion_term(co)
        if self.scatter_csr is not None:
            return self.scatter_csr.dot(term)
        return self.scatter.dot(term)

    def commit(
        self,
        co: _ReactiveCoeffs,
        x_padded: np.ndarray,
        x: np.ndarray,
        time: float,
    ) -> None:
        """Advance the integrator state after a converged step.

        ``x_padded`` is ``x`` with one trailing zero so ground indices
        gather 0.0.
        """
        if not self.n:
            self.ring.t_now = time
            return
        v_new = x_padded[self.a_idx] - x_padded[self.b_idx]
        if co.gcol is None:
            i_new = co.upd_g * (v_new - self.v)
            if co.upd_m:
                i_new -= self.i
        else:
            # Derivative state from the integration formula itself:
            # i_{n+1} = geq*v_{n+1} + ieq (cap slots; inductor slots
            # are overwritten from the branch currents below).
            i_new = co.gcol * v_new + self._companion_term(co)
        if len(self.inds):
            i_new[self.n_caps:] = x[self.br_idx]
        self.ring.push()
        self.v = v_new
        self.i = i_new
        if self.ring.depth:
            self.ring.set_current(v_new, i_new, self.n_caps)
        self.ring.t_now = time


class DtCache:
    """Setup-keyed LRU with a two-slot *ephemeral* side cache.

    The policy both transient assemblies (per-sample and batched
    lockstep) share.  Keys are opaque hashables — the assemblies key
    every entry by the full integration setup ``(dt, method, order)``
    rather than ``dt`` alone, so switching method or order on a live
    assembly can never reuse a stale entry whose build closure baked
    in a different integrator.  Quantized step sizes live in an LRU
    of at most ``max_entries`` cache entries; breakpoint-truncated
    one-shot step sizes — arbitrary event-driven floats that will not
    recur — are served from a two-slot scratch area (a truncated
    candidate step solves at ``dt`` *and* ``dt/2``, and a
    Newton-reject retry revisits the same pair) so they never evict
    the controller's quantized grid entries.

    ``build(key)`` constructs a missing entry; the optional
    ``retire(entry)`` hook runs when an entry leaves the cache
    (eviction or ephemeral turnover), which is how the per-sample
    assembly keeps its factorization counters honest.
    """

    def __init__(self, build, retire=None, max_entries: int = 8):
        if max_entries < 1:
            raise ValueError("max_dt_entries must be >= 1")
        self._build = build
        self._retire = retire
        self.max_entries = max_entries
        self._entries: "OrderedDict[object, object]" = OrderedDict()
        self._ephemeral: Dict[object, object] = {}

    def get(self, key, ephemeral: bool = False):
        """The entry for ``key``, built on demand."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        elif ephemeral:
            entry = self._ephemeral.get(key)
            if entry is None:
                if len(self._ephemeral) >= 2:
                    # A new truncated step: the previous pair is done.
                    if self._retire is not None:
                        for old in self._ephemeral.values():
                            self._retire(old)
                    self._ephemeral.clear()
                entry = self._build(key)
                self._ephemeral[key] = entry
        else:
            entry = self._build(key)
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                _, evicted = self._entries.popitem(last=False)
                if self._retire is not None:
                    self._retire(evicted)
        return entry

    def __len__(self) -> int:
        """Number of quantized-grid (non-ephemeral) entries alive."""
        return len(self._entries)

    def live_entries(self) -> List[object]:
        """Every entry currently held (grid + ephemeral)."""
        return list(self._entries.values()) + list(self._ephemeral.values())


class _DtEntry:
    """Everything the engine caches for one quantized step size.

    ``G_base`` is whatever the active backend finalizes — a frozen
    dense ndarray or a CSR matrix — and ``lu`` the matching
    factorization object; every consumer goes through the backend-
    agnostic ``solve`` interface.
    """

    __slots__ = (
        "dt", "G_base", "coeffs", "lu", "rank1", "woodbury", "chord", "delta"
    )

    def __init__(self, dt: float, G_base, coeffs: _ReactiveCoeffs):
        self.dt = dt
        self.G_base = G_base
        self.coeffs = coeffs
        self.lu = None  # lazy backend factorization
        self.rank1: Optional[tuple] = None  # lazy (w, vw, w_vmax)
        self.woodbury: Optional[tuple] = None  # lazy (WU, VWU)
        #: Sparse general-Newton data: (pattern_version, W = G_base^-1 U)
        #: for the nonlinear components' touched-row selector U (lazy).
        self.delta: Optional[tuple] = None
        #: Frozen chord-Newton Jacobian for this step size (lazy).  A
        #: per-entry slot keeps the chord strategy's whole point —
        #: reusing one factorization across iterations *and* steps —
        #: intact when the adaptive controller alternates between a
        #: step size and its half.
        self.chord: Optional[ReusableLU] = None


class TransientAssembly:
    """Cached linear system(s) for one transient run.

    Built once per :func:`~repro.circuits.transient.run_transient`
    call for a fixed ``(method, gmin)``; exposes the assembly tiers
    described in the module docstring.  The ``dt``-dependent products
    live in a small LRU of per-step-size cache entries; switch the
    active entry with :meth:`set_dt` (a fixed-step run stays on its
    initial entry forever).
    """

    def __init__(
        self,
        circuit: Circuit,
        dt: float,
        method: Union[str, IntegrationMethod],
        gmin: float,
        max_dt_entries: int = 8,
        backend: Union[str, MatrixBackend, None] = "auto",
    ):
        circuit.prepare()
        self.circuit = circuit
        self.method = resolve_method(method)
        self.method_name = self.method.name
        self.gmin = gmin
        self.size = circuit.size
        self.n_nodes = circuit.n_nodes
        self.backend = resolve_backend(backend, self.size)

        split, full = circuit.partition_components()
        self._split: List[Component] = split
        self.full: List[Component] = full

        # Plain reactive elements get the vectorized state path;
        # subclasses fall back to the generic split methods.
        caps = [c for c in split if type(c) is Capacitor]
        inds = [c for c in split if type(c) is Inductor]
        vectorized = set(id(c) for c in caps + inds)
        #: Names of components whose integrator state lives in the
        #: vectorized arrays rather than the generic ``states`` dict.
        self.vectorized_names = {c.name for c in caps + inds}
        self.reactive = _ReactiveSet(caps, inds, self.size)
        if self.method.is_multistep:
            self.reactive.enable_history(
                self.method.history_depth(self.method.max_order)
            )
        #: Active integration order (the startup ramp and the order
        #: controller move it; one-step methods never do).
        self._order = self.method.usable_order(self.method.max_order, 1)
        # Split components with per-step RHS work (sources, reactive
        # subclasses) — skip ones whose stamp_dynamic is the base
        # no-op so large resistive networks pay nothing per step.
        self.dynamic: List[Component] = [
            c
            for c in split
            if id(c) not in vectorized
            and type(c).stamp_dynamic is not Component.stamp_dynamic
        ]

        # Scratch system and context reused by per-step/per-iteration
        # stamping so the hot loop constructs no MNASystem or
        # StampContext objects.  ``_ctx.dt`` tracks the active entry.
        self._scratch = MNASystem(self.size)
        self._ctx = StampContext(
            system=self._scratch,
            x=np.zeros(self.size),
            time=0.0,
            dt=dt,
            method=self.method_name,
            gmin=gmin,
            coeffs=self.method.base_coeffs(self._order),
        )
        # Padded iterate buffer: trailing slot stays 0.0 so ground
        # indices gather zero.
        self._xp = np.zeros(self.size + 1)

        # Constant low-rank structure (dt independent), built lazily.
        self._rankk_U: Optional[np.ndarray] = None
        self._rankk_ctrl: Optional[Tuple[np.ndarray, np.ndarray]] = None

        #: Structure of the static stamp stream, captured on the first
        #: entry build and reused by every later one (structure/value
        #: split: only the values depend on dt).
        self._pattern: Optional[StampPattern] = None
        #: Per-``(method, order)`` affine models of the static value
        #: stream, ``values(dt) = c + s / dt`` — for plain R/L/C
        #: netlists the only dt-dependent stamps are the companion
        #: terms ``lead*C/dt`` and ``-lead*L/dt``, so the whole stream
        #: is affine in ``1/dt`` once the method's leading coefficient
        #: is fixed.  Fitted from two probe stamps and verified
        #: against a third by :meth:`_fit_affine`; a family maps to
        #: ``None`` when verification failed (some component stamps a
        #: non-affine value) and every entry re-stamps the slow way.
        #: Only consulted for iterative backends: the reconstruction
        #: is exact up to rounding, which a tolerance-based solve
        #: absorbs but a bit-pinned direct factorization must not see.
        self._affine: Dict[tuple, Optional[tuple]] = {}
        self._static_ctx = StampContext(
            system=None,  # a TripletSystem per build
            x=np.zeros(self.size),
            time=0.0,
            dt=dt,
            method=self.method_name,
            gmin=gmin,
            coeffs=self.method.base_coeffs(self._order),
        )
        # Sparse general-Newton scratch: the nonlinear components'
        # per-iteration stamps recorded as a (tiny) triplet stream and
        # applied against the base LU as a low-rank update.
        self._delta_scratch = TripletSystem(self.size)
        self._delta_rows: List[int] = []
        self._delta_cols: List[int] = []
        self._delta_row_pos: Dict[int, int] = {}
        self._delta_col_pos: Dict[int, int] = {}
        self._delta_version = 0
        # Matrix guard handed to the RHS scratch in sparse mode: any
        # stamp_dynamic that (incorrectly) writes matrix entries hits
        # an empty array and fails loudly.
        self._guard_G = np.zeros((0, 0))

        #: Factorizations performed inside entries that were later
        #: evicted from the LRU (kept so diagnostics never undercount).
        self.retired_factorizations = 0
        self._cache = DtCache(
            self._build_entry, self._retire, max_entries=max_dt_entries
        )
        self._active: _DtEntry
        self.set_dt(dt)

    # -- (dt, method, order)-keyed cache --------------------------------------

    def _stamp_values(self, dt: float, order: int) -> TripletSystem:
        """One full static stamp pass at ``(dt, order)``."""
        tri = TripletSystem(self.size)
        ctx = self._static_ctx
        ctx.system = tri
        ctx.dt = dt
        ctx.coeffs = self.method.base_coeffs(order)
        for component in self._split:
            component.stamp_static(ctx)
        for i in range(self.n_nodes):
            tri.add_G(i, i, self.gmin)
        return tri

    def _fit_affine(
        self, dt: float, order: int, v1: np.ndarray
    ) -> Optional[tuple]:
        """Fit ``values(dt) = c + s / dt`` for the active method/order.

        ``v1`` is the stream just stamped at ``dt``; two more probe
        stamps (at ``2*dt`` and ``dt/2``) identify the affine model
        and verify it, so a component whose static stamp is *not*
        affine in ``1/dt`` (or that changes the stamp structure with
        the step size) falls back to per-entry stamping instead of
        being served a wrong matrix.  Returns ``(c, s)`` or ``None``.
        """
        tri2 = self._stamp_values(2.0 * dt, order)
        tri3 = self._stamp_values(0.5 * dt, order)
        if not (self._pattern.matches(tri2) and self._pattern.matches(tri3)):
            return None
        t1 = 1.0 / dt
        v2 = tri2.values()  # at t1 / 2
        v3 = tri3.values()  # at t1 * 2
        s = (v1 - v2) / (t1 - 0.5 * t1)
        c = v1 - s * t1
        predicted = c + s * (2.0 * t1)
        scale = float(np.max(np.abs(v3))) if v3.size else 0.0
        if not np.allclose(predicted, v3, rtol=1e-9, atol=1e-12 * scale):
            return None
        return c, s

    def _build_entry(self, key: Tuple[float, IntegrationMethod, int]) -> _DtEntry:
        dt, _method, order = key
        family = (self.method, order)
        # False = family not probed yet; None = probed, not affine.
        model = (
            self._affine.get(family, False)
            if self.backend.is_iterative
            else None
        )
        if model:
            c, s = model
            G = self.backend.finalize(self._pattern, c + s * (1.0 / dt))
            return _DtEntry(dt, G, self.reactive.coeffs(dt, self.method, order))
        tri = self._stamp_values(dt, order)
        if self._pattern is None or not self._pattern.matches(tri):
            self._pattern = tri.pattern()
            # Fitted value models are pinned to the old structure.
            self._affine.clear()
            model = False if self.backend.is_iterative else None
        values = tri.values()
        if model is False:
            self._affine[family] = self._fit_affine(dt, order, values)
        G = self.backend.finalize(self._pattern, values)
        return _DtEntry(dt, G, self.reactive.coeffs(dt, self.method, order))

    def set_dt(
        self, dt: float, ephemeral: bool = False, order: Optional[int] = None
    ) -> None:
        """Make ``(dt, order)`` the active integration setup, building
        or reusing its cache entry (:class:`DtCache` policy: LRU
        eviction beyond ``max_dt_entries``, two ephemeral scratch
        slots for breakpoint-truncated one-shot step sizes).  Entries
        are keyed by the full ``(dt, method, order)`` setup, never by
        ``dt`` alone.
        """
        dt = float(dt)
        if order is not None and order != self._order:
            self._order = int(order)
            self._ctx.coeffs = self.method.base_coeffs(self._order)
        # Keyed by the method *object*, not its name: the built-in
        # names resolve to singletons (so trap -> be -> trap reuses
        # entries), while a custom method that happens to share a name
        # can never be served another method's matrices.
        key = (dt, self.method, self._order)
        self._active = self._cache.get(key, ephemeral=ephemeral)
        self._ctx.dt = dt

    def set_method(
        self,
        method: Union[str, IntegrationMethod],
        order: Optional[int] = None,
        bootstrap_dt: Optional[float] = None,
    ) -> None:
        """Switch the integration method on a live assembly.

        The cache key includes the method name and order, so entries
        built for the previous method can never be served again; they
        age out of the LRU normally.

        ``bootstrap_dt`` (multistep targets only) discards whatever
        committed history survives the switch and synthesizes a fresh
        uniform one at that spacing from the current state and its
        derivative (:meth:`_ReactiveSet.bootstrap_history`), so a
        phase switch into Gear starts at full order immediately
        instead of ramping.
        """
        self.method = resolve_method(method)
        self.method_name = self.method.name
        if self.method.is_multistep:
            self.reactive.enable_history(
                self.method.history_depth(self.method.max_order)
            )
        # The step-weights memo is keyed by (dt, order, history) only;
        # weights (and companion terms) computed by the previous
        # method must not survive.
        self.reactive.ring.clear_weights()
        self.reactive._cterm = None
        if bootstrap_dt is not None and self.method.is_multistep:
            self.reactive.reset_history()
            self.reactive.bootstrap_history(float(bootstrap_dt))
        if order is None:
            order = self.method.usable_order(
                self.method.max_order, self.reactive.history_points
            )
        self._order = int(order)
        self._ctx.method = self.method_name
        self._static_ctx.method = self.method_name
        self._ctx.coeffs = self.method.base_coeffs(self._order)
        self.set_dt(self.dt)

    @property
    def order(self) -> int:
        """The active integration order."""
        return self._order

    @property
    def history_points(self) -> int:
        """Committed states available to a multistep formula."""
        return self.reactive.history_points

    def reset_history(self) -> None:
        """Invalidate multistep history (used across breakpoints)."""
        self.reactive.reset_history()

    def _retire(self, entry: Optional[_DtEntry]) -> None:
        """Count, then release, an evicted entry's factorizations.

        Dropping the references (rather than letting the evicted entry
        keep them alive through stray aliases) is what bounds the
        memory of a long adaptive run: a sparse LU of a large ladder
        is far bigger than the CSR matrix it factors.
        """
        if entry is None:
            return
        for attr in ("lu", "chord"):
            lu = getattr(entry, attr)
            if lu is not None:
                self.retired_factorizations += lu.n_factorizations
                setattr(entry, attr, None)
        entry.rank1 = None
        entry.woodbury = None
        entry.delta = None

    @property
    def dt(self) -> float:
        """The active step size."""
        return self._active.dt

    @property
    def G_base(self):
        """The cached base matrix of the active step size (a frozen
        dense ndarray or a CSR matrix, per the backend)."""
        return self._active.G_base

    @property
    def n_dt_entries(self) -> int:
        return len(self._cache)

    def lu(self):
        """Cached backend factorization of the active base matrix
        (lazy): :class:`~repro.circuits.linsolve.ReusableLU` dense,
        :class:`~repro.circuits.backend.SparseLU` sparse."""
        entry = self._active
        if entry.lu is None:
            entry.lu = self.backend.factor(entry.G_base)
        return entry.lu

    def chord_lu(self) -> ReusableLU:
        """The active step size's frozen chord Jacobian slot (lazy,
        unfactored until the solver captures a Jacobian in it)."""
        entry = self._active
        if entry.chord is None:
            entry.chord = ReusableLU()
        return entry.chord

    @property
    def lu_factorizations(self) -> int:
        """Total factorizations across all (live + evicted) entries."""
        live = sum(
            lu.n_factorizations
            for e in self._cache.live_entries()
            for lu in (e.lu, e.chord)
            if lu is not None
        )
        return live + self.retired_factorizations

    # -- strategy discovery ---------------------------------------------------

    @property
    def is_linear(self) -> bool:
        """No per-iteration restamping needed at all."""
        return not self.full

    def rank1_device(self) -> Optional[NonlinearVCCS]:
        """The single nonlinear VCCS, if that is the *only* full-stamp
        component — the cached-Jacobian (Sherman–Morrison) case."""
        if len(self.full) == 1 and type(self.full[0]) is NonlinearVCCS:
            return self.full[0]
        return None

    def rankk_devices(self) -> Optional[List[NonlinearVCCS]]:
        """The nonlinear VCCS devices, if they are the only full-stamp
        components and few enough for the Woodbury fast path."""
        if not 1 <= len(self.full) <= MAX_WOODBURY_RANK:
            return None
        if all(type(c) is NonlinearVCCS for c in self.full):
            return list(self.full)
        return None

    def rank1_vectors(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(u, v)`` with the device stamp ``G = G_base + gm*u@v.T``
        and RHS contribution ``-i_eq*u``."""
        device = self.rank1_device()
        op, on, cp, cn = device._n
        u = np.zeros(self.size)
        if op >= 0:
            u[op] += 1.0
        if on >= 0:
            u[on] -= 1.0
        v = np.zeros(self.size)
        if cp >= 0:
            v[cp] += 1.0
        if cn >= 0:
            v[cn] -= 1.0
        return u, v

    def rank1_data(self) -> Tuple[np.ndarray, float, float]:
        """``(w, vw, w_vmax)`` of the Sherman–Morrison fast path for
        the active step size: ``w = G_base^-1 u``, its control-space
        projection, and the largest node-voltage magnitude of ``w``."""
        entry = self._active
        if entry.rank1 is None:
            device = self.rank1_device()
            op, on, cp, cn = device._n
            u, _v = self.rank1_vectors()
            w = self.lu().solve(u)
            vw = (w[cp] if cp >= 0 else 0.0) - (w[cn] if cn >= 0 else 0.0)
            w_v = w[: self.n_nodes]
            w_vmax = float(np.abs(w_v).max()) if w_v.size else 0.0
            entry.rank1 = (w, float(vw), w_vmax)
        return entry.rank1

    def rankk_structure(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Constant ``(U, cp_idx, cn_idx)`` of the rank-k update.

        ``U`` is ``(size, k)`` with one output-injection column per
        device; ``cp_idx``/``cn_idx`` are the control-node gather
        indices (``-1`` marks ground, gathered as 0).
        """
        if self._rankk_U is None:
            devices = self.rankk_devices()
            k = len(devices)
            U = np.zeros((self.size, k))
            cp_idx = np.empty(k, dtype=np.intp)
            cn_idx = np.empty(k, dtype=np.intp)
            for j, device in enumerate(devices):
                op, on, cp, cn = device._n
                if op >= 0:
                    U[op, j] += 1.0
                if on >= 0:
                    U[on, j] -= 1.0
                cp_idx[j] = cp
                cn_idx[j] = cn
            self._rankk_U = U
            self._rankk_ctrl = (cp_idx, cn_idx)
        return self._rankk_U, self._rankk_ctrl[0], self._rankk_ctrl[1]

    def ctrl_project(self, vec: np.ndarray) -> np.ndarray:
        """``V^T vec``: differential control voltages of every rank-k
        device read off a solution-space vector."""
        _U, cp_idx, cn_idx = self.rankk_structure()
        vp = np.where(cp_idx >= 0, vec[np.maximum(cp_idx, 0)], 0.0)
        vn = np.where(cn_idx >= 0, vec[np.maximum(cn_idx, 0)], 0.0)
        return vp - vn

    def woodbury_data(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(WU, VWU)`` of the Woodbury fast path for the active step
        size: ``WU = G_base^-1 U`` and ``VWU = V^T WU``."""
        entry = self._active
        if entry.woodbury is None:
            U, _cp, _cn = self.rankk_structure()
            WU = self.lu().solve(U)
            # VWU[j, l] = v_j^T W u_l: column l is the control-space
            # projection of W u_l.
            VWU = np.column_stack(
                [self.ctrl_project(WU[:, l]) for l in range(U.shape[1])]
            )
            entry.woodbury = (WU, VWU)
        return entry.woodbury

    # -- adaptive-step state management --------------------------------------

    def snapshot_state(self, states: Dict[str, object]) -> tuple:
        """Capture all integrator state so a trial step can be undone.

        Includes the multistep history ring (values, derivatives,
        times, fill level) so a rejected BDF/Gear trial step restores
        the history *exactly* — not just the newest state.  Generic
        component states are snapshotted by reference: the engine's
        ``update_state`` implementations return fresh state objects
        rather than mutating, so a shallow dict copy is a true
        snapshot.
        """
        r = self.reactive
        return (r.v.copy(), r.i.copy(), r.ring.snapshot(), dict(states))

    def restore_state(self, snapshot: tuple, states: Dict[str, object]) -> None:
        """Undo every state change since the matching snapshot."""
        v, i, ring_snap, generic = snapshot
        r = self.reactive
        r.v = v.copy()
        r.i = i.copy()
        r.ring.restore(ring_snap)
        if r.ring.depth:
            r.ring.set_current(r.v, r.i, r.n_caps)
        states.clear()
        states.update(generic)

    # -- once per step --------------------------------------------------------

    def step_rhs(
        self, time: float, states: Dict[str, object], x: np.ndarray
    ) -> np.ndarray:
        """Linear right-hand side for one step (iterate-independent)."""
        rhs = self.reactive.companion_rhs(self._active.coeffs)
        if self.dynamic:
            ctx = self._ctx
            # Not written by stamp_dynamic: the frozen dense base, or
            # an empty guard in sparse mode — either fails loudly.
            self._scratch.G = (
                self.G_base if self.backend.is_dense else self._guard_G
            )
            self._scratch.rhs = rhs
            ctx.x = x
            ctx.time = time
            ctx.states = states
            for component in self.dynamic:
                component.stamp_dynamic(ctx)
        return rhs

    # -- once per Newton iteration --------------------------------------------

    def assemble(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Full system at iterate ``x``: cached copies + full stamps."""
        G = self.G_base.copy()
        rhs = rhs_lin.copy()
        if self.full:
            ctx = self._ctx
            self._scratch.G = G
            self._scratch.rhs = rhs
            ctx.x = x
            ctx.time = time
            ctx.states = states
            for component in self.full:
                component.stamp(ctx)
        return G, rhs

    def assemble_dense(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
        extra_gmin: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fully-stamped *dense* ``(G, rhs)`` at iterate ``x``, on any
        backend, with an optional extra node-to-ground conductance.

        This is the rescue ladder's system builder: a per-step gmin
        ramp needs the Jacobian with ``extra_gmin`` added on every
        node's diagonal, and a residual-continuation stage needs the
        raw ``(G, rhs)`` pair to offset.  Rescue only runs after a
        Newton failure, so materializing the sparse base as dense here
        is fine — this is never the healthy hot path.
        """
        if self.backend.is_dense:
            G, rhs = self.assemble(x, rhs_lin, time, states)
        else:
            tri = self._delta_scratch
            tri.clear()
            ctx = self._ctx
            ctx.system = tri
            ctx.x = x
            ctx.time = time
            ctx.states = states
            for component in self.full:
                component.stamp(ctx)
            ctx.system = self._scratch
            G = self.G_base.toarray()
            if tri.rows:
                np.add.at(G, (tri.rows, tri.cols), tri.vals)
            rhs = rhs_lin + tri.rhs
        if extra_gmin:
            idx = np.arange(self.n_nodes)
            G[idx, idx] += extra_gmin
        return G, rhs

    # -- sparse general Newton: base LU + low-rank delta ----------------------

    def _delta_map(self, indices: List[int], positions: Dict[int, int], order: List[int]) -> np.ndarray:
        """Local slots of global indices, extending the union pattern."""
        local = np.empty(len(indices), dtype=np.intp)
        for j, idx in enumerate(indices):
            slot = positions.get(idx)
            if slot is None:
                slot = len(order)
                positions[idx] = slot
                order.append(idx)
                self._delta_version += 1
            local[j] = slot
        return local

    def _delta_W(self) -> np.ndarray:
        """``G_base^-1 U`` for the touched-row selector ``U``, cached
        per dt entry and invalidated when the touched-position union
        grows (a nonlinear device stamping a new position)."""
        entry = self._active
        if entry.delta is None or entry.delta[0] != self._delta_version:
            U = np.zeros((self.size, len(self._delta_rows)))
            U[self._delta_rows, np.arange(len(self._delta_rows))] = 1.0
            entry.delta = (self._delta_version, self.lu().solve(U))
        return entry.delta[1]

    def delta_solve(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> np.ndarray:
        """Solve the fully-stamped system against the sparse base LU.

        The sparse backend's replacement for ``assemble`` + dense
        solve: the nonlinear (or split-incapable) components' stamps
        are recorded as a tiny triplet stream, viewed as the low-rank
        update ``G = G_base + U M V^T`` — ``U``/``V`` select the
        touched rows/columns (a fixed, small set per netlist), ``M``
        is the dense submatrix of this iteration's stamp values — and
        folded into the solution by the generalized Woodbury identity
        around the cached per-``dt`` factorization.  No sparse
        refactorization, no dense assembly, exact to rounding: the
        Newton iterates match the dense path at solver tolerance.
        """
        tri = self._delta_scratch
        tri.clear()
        ctx = self._ctx
        ctx.system = tri
        ctx.x = x
        ctx.time = time
        ctx.states = states
        for component in self.full:
            component.stamp(ctx)
        ctx.system = self._scratch
        b = rhs_lin + tri.rhs
        lu = self.lu()
        if tri.rows:
            solve_updated = getattr(lu, "solve_updated", None)
            if solve_updated is not None:
                # Matrix-free path (Krylov backend): the Jacobian-vector
                # product is applied as base-CSR times vector plus a
                # triplet scatter — no Woodbury bookkeeping, and no
                # multi-column ``W = G_base^-1 U`` whose per-column
                # iterative solves would dwarf the step itself.
                return solve_updated(b, tri.rows, tri.cols, tri.vals)
        z = lu.solve(b)
        if not tri.rows:
            return z
        r_loc = self._delta_map(tri.rows, self._delta_row_pos, self._delta_rows)
        c_loc = self._delta_map(tri.cols, self._delta_col_pos, self._delta_cols)
        W = self._delta_W()
        M = np.zeros((len(self._delta_rows), len(self._delta_cols)))
        np.add.at(M, (r_loc, c_loc), tri.vals)
        cols = np.asarray(self._delta_cols, dtype=np.intp)
        S = np.eye(len(cols)) + W[cols, :].dot(M)
        try:
            s = np.linalg.solve(S, z[cols])
        except np.linalg.LinAlgError:
            # Momentarily singular along the update directions: fall
            # back to one dense solve (rare, never the steady path).
            G = self.G_base.toarray()
            np.add.at(G, (tri.rows, tri.cols), tri.vals)
            return solve_dense(G, b)
        return z - W.dot(M.dot(s))

    # -- after a converged step ----------------------------------------------

    def commit(
        self, x: np.ndarray, time: float, states: Dict[str, object]
    ) -> np.ndarray:
        """Advance all integrator states; returns the padded iterate
        (reused by callers that gather with ground indices)."""
        xp = self._xp
        xp[: self.size] = x
        self.reactive.commit(self._active.coeffs, xp, x, time)
        if states:
            ctx = self._ctx
            ctx.x = x
            ctx.time = time
            ctx.states = states
            for name in list(states):
                states[name] = self.circuit[name].update_state(ctx)
        return xp
