"""Incremental MNA assembly for the transient engine.

The seed engine rebuilt the full dense system with a Python loop over
every component at every Newton iteration of every step.  For the
circuits this library simulates — the Fig 1 oscillator is one
nonlinear VCCS among six components — that loop is ~85 % redundant:
linear stamps never change during a run.

:class:`TransientAssembly` exploits the component stamp split (see
:class:`~repro.circuits.component.Component`) to assemble each part of
the system exactly as often as it can change:

* **once per run** — the base matrix ``G_base``: all linear matrix
  stamps (R, switches, L/C companion conductances, source branch rows,
  VCVS/VCCS) plus the global ``gmin`` diagonal, for one
  ``(dt, method, gmin)`` setup;
* **once per step** — the linear right-hand side: source values at the
  step time plus the reactive companion currents, evaluated from the
  integrator state with vectorized numpy instead of per-component
  Python (`plain :class:`~repro.circuits.elements.Capacitor` and
  :class:`~repro.circuits.elements.Inductor` states live in flat
  arrays);
* **once per Newton iteration** — only the nonlinear (or split-
  incapable) components, restamped onto copies of the cached parts.

The assembly also recognizes the **rank-1 Jacobian** special case: a
single :class:`~repro.circuits.controlled.NonlinearVCCS` perturbs the
cached base matrix by ``gm * u v^T`` with constant ``u, v``, so each
Newton solve collapses to a Sherman–Morrison update around one cached
factorization of ``G_base`` — no matrix assembly or LAPACK call at
all in the inner loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .component import Component, MNASystem, StampContext
from .controlled import NonlinearVCCS
from .elements import Capacitor, Inductor
from .netlist import Circuit

__all__ = ["TransientAssembly"]


class _ReactiveSet:
    """Vectorized companion-model state for plain capacitors/inductors.

    Stores the (previous voltage, previous current) integrator state of
    every plain :class:`Capacitor` and :class:`Inductor` in flat numpy
    arrays, with precomputed coefficients so that the per-step
    companion RHS and the post-step state update are a handful of
    vector operations instead of a Python loop over components.
    """

    def __init__(
        self,
        caps: List[Capacitor],
        inds: List[Inductor],
        size: int,
        dt: float,
        method: str,
    ):
        self.caps = caps
        self.inds = inds
        self.size = size
        n = len(caps) + len(inds)
        self.n = n
        # Gather indices; ground (-1) redirects to a padded zero slot.
        pad = size
        self.a_idx = np.array(
            [c._n[0] if c._n[0] >= 0 else pad for c in caps]
            + [l._n[0] if l._n[0] >= 0 else pad for l in inds],
            dtype=np.intp,
        )
        self.b_idx = np.array(
            [c._n[1] if c._n[1] >= 0 else pad for c in caps]
            + [l._n[1] if l._n[1] >= 0 else pad for l in inds],
            dtype=np.intp,
        )
        self.br_idx = np.array([l._b[0] for l in inds], dtype=np.intp)
        self.n_caps = len(caps)

        geq = np.array(
            [c.companion_conductance(dt, method) for c in caps], dtype=float
        )
        req = np.array(
            [l.companion_resistance(dt, method) for l in inds], dtype=float
        )
        trap = method != "be"
        # Companion RHS term per element: alpha*v_state + beta*i_state.
        #   cap:  ieq = -geq*v - i (trap) | -geq*v (be)
        #   ind:  rhs = -v - req*i (trap) | -req*i (be)
        self.alpha = np.concatenate(
            [-geq, np.full(len(inds), -1.0 if trap else 0.0)]
        )
        self.beta = np.concatenate(
            [np.full(len(caps), -1.0 if trap else 0.0), -req]
        )
        # Scatter matrix: rhs += S @ term.  A cap's ieq flows a->b
        # (rhs[a] -= ieq, rhs[b] += ieq); an inductor's term lands on
        # its own branch row.
        S = np.zeros((size, n))
        for j, c in enumerate(caps):
            a, b = c._n
            if a >= 0:
                S[a, j] -= 1.0
            if b >= 0:
                S[b, j] += 1.0
        for j, l in enumerate(inds):
            S[l._b[0], len(caps) + j] += 1.0
        self.scatter = S
        # State-update coefficients: i' = upd_g*(v'-v) - upd_m*i for
        # caps (upd_g is 2C/dt for trap, C/dt for BE); inductor slots
        # are placeholders, overwritten by their branch currents.
        self.upd_g = np.concatenate([geq, np.zeros(len(inds))])
        self.upd_m = 1.0 if trap else 0.0

        # State arrays, filled by init_state().
        self.v = np.zeros(n)
        self.i = np.zeros(n)

    def init_state(self, x: np.ndarray) -> None:
        """Seed integrator state from a converged starting point.

        Delegates to each component's ``init_state`` so the ``ic``
        handling stays in exactly one place.
        """
        for j, c in enumerate(self.caps):
            st = c.init_state(x)
            self.v[j], self.i[j] = st.v, st.i
        for j, l in enumerate(self.inds):
            st = l.init_state(x)
            self.v[self.n_caps + j], self.i[self.n_caps + j] = st.v, st.i

    def companion_rhs(self) -> np.ndarray:
        """The companion RHS of the current state (fresh vector)."""
        if not self.n:
            return np.zeros(self.size)
        term = self.alpha * self.v + self.beta * self.i
        return self.scatter.dot(term)

    def commit(self, x_padded: np.ndarray, x: np.ndarray) -> None:
        """Advance the integrator state after a converged step.

        ``x_padded`` is ``x`` with one trailing zero so ground indices
        gather 0.0.
        """
        if not self.n:
            return
        v_new = x_padded[self.a_idx] - x_padded[self.b_idx]
        i_new = self.upd_g * (v_new - self.v)
        if self.upd_m:
            i_new -= self.i
        if len(self.inds):
            i_new[self.n_caps:] = x[self.br_idx]
        self.v = v_new
        self.i = i_new


class TransientAssembly:
    """Cached linear system for one transient run.

    Built once per :func:`~repro.circuits.transient.run_transient`
    call for a fixed ``(dt, method, gmin)``; exposes the three
    assembly tiers described in the module docstring.
    """

    def __init__(self, circuit: Circuit, dt: float, method: str, gmin: float):
        circuit.prepare()
        self.circuit = circuit
        self.dt = dt
        self.method = method
        self.gmin = gmin
        self.size = circuit.size
        self.n_nodes = circuit.n_nodes

        split, full = circuit.partition_components()
        self.full: List[Component] = full

        # Plain reactive elements get the vectorized state path;
        # subclasses fall back to the generic split methods.
        caps = [c for c in split if type(c) is Capacitor]
        inds = [c for c in split if type(c) is Inductor]
        vectorized = set(id(c) for c in caps + inds)
        #: Names of components whose integrator state lives in the
        #: vectorized arrays rather than the generic ``states`` dict.
        self.vectorized_names = {c.name for c in caps + inds}
        self.reactive = _ReactiveSet(caps, inds, self.size, dt, method)
        # Split components with per-step RHS work (sources, reactive
        # subclasses) — skip ones whose stamp_dynamic is the base
        # no-op so large resistive networks pay nothing per step.
        self.dynamic: List[Component] = [
            c
            for c in split
            if id(c) not in vectorized
            and type(c).stamp_dynamic is not Component.stamp_dynamic
        ]

        # --- once per run: the base matrix -------------------------------
        system = MNASystem(self.size)
        ctx = StampContext(
            system=system,
            x=np.zeros(self.size),
            time=0.0,
            dt=dt,
            method=method,
            gmin=gmin,
        )
        for component in split:
            component.stamp_static(ctx)
        for i in range(self.n_nodes):
            system.add_G(i, i, gmin)
        self.G_base = system.G
        # Freeze the cache: a stamp_dynamic that (incorrectly) writes
        # matrix entries must fail loudly, not corrupt every later
        # iteration's base copy.
        self.G_base.setflags(write=False)

        # Scratch system and context reused by per-step/per-iteration
        # stamping so the hot loop constructs no MNASystem or
        # StampContext objects.
        self._scratch = MNASystem(self.size)
        self._ctx = StampContext(
            system=self._scratch,
            x=np.zeros(self.size),
            time=0.0,
            dt=dt,
            method=method,
            gmin=gmin,
        )
        # Padded iterate buffer: trailing slot stays 0.0 so ground
        # indices gather zero.
        self._xp = np.zeros(self.size + 1)

    # -- strategy discovery ---------------------------------------------------

    @property
    def is_linear(self) -> bool:
        """No per-iteration restamping needed at all."""
        return not self.full

    def rank1_device(self) -> Optional[NonlinearVCCS]:
        """The single nonlinear VCCS, if that is the *only* full-stamp
        component — the cached-Jacobian (Sherman–Morrison) case."""
        if len(self.full) == 1 and type(self.full[0]) is NonlinearVCCS:
            return self.full[0]
        return None

    def rank1_vectors(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(u, v)`` with the device stamp ``G = G_base + gm*u@v.T``
        and RHS contribution ``-i_eq*u``."""
        device = self.rank1_device()
        op, on, cp, cn = device._n
        u = np.zeros(self.size)
        if op >= 0:
            u[op] += 1.0
        if on >= 0:
            u[on] -= 1.0
        v = np.zeros(self.size)
        if cp >= 0:
            v[cp] += 1.0
        if cn >= 0:
            v[cn] -= 1.0
        return u, v

    # -- once per step --------------------------------------------------------

    def step_rhs(
        self, time: float, states: Dict[str, object], x: np.ndarray
    ) -> np.ndarray:
        """Linear right-hand side for one step (iterate-independent)."""
        rhs = self.reactive.companion_rhs()
        if self.dynamic:
            ctx = self._ctx
            self._scratch.G = self.G_base  # not written by stamp_dynamic
            self._scratch.rhs = rhs
            ctx.x = x
            ctx.time = time
            ctx.states = states
            for component in self.dynamic:
                component.stamp_dynamic(ctx)
        return rhs

    # -- once per Newton iteration --------------------------------------------

    def assemble(
        self,
        x: np.ndarray,
        rhs_lin: np.ndarray,
        time: float,
        states: Dict[str, object],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Full system at iterate ``x``: cached copies + full stamps."""
        G = self.G_base.copy()
        rhs = rhs_lin.copy()
        if self.full:
            ctx = self._ctx
            self._scratch.G = G
            self._scratch.rhs = rhs
            ctx.x = x
            ctx.time = time
            ctx.states = states
            for component in self.full:
                component.stamp(ctx)
        return G, rhs

    # -- after a converged step ----------------------------------------------

    def commit(
        self, x: np.ndarray, time: float, states: Dict[str, object]
    ) -> np.ndarray:
        """Advance all integrator states; returns the padded iterate
        (reused by callers that gather with ground indices)."""
        xp = self._xp
        xp[: self.size] = x
        self.reactive.commit(xp, x)
        if states:
            ctx = self._ctx
            ctx.x = x
            ctx.time = time
            ctx.states = states
            for name in list(states):
                states[name] = self.circuit[name].update_state(ctx)
        return xp
