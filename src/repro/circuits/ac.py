"""Small-signal AC analysis.

Nonlinear devices are linearized around a DC operating point; the
complex MNA system is then solved at each requested frequency.  Used to
verify the resonance (ω0, Q) of the external LC network against the
analytic tank model in :mod:`repro.envelope.tank`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from .backend import SparseBackend, resolve_backend
from .component import ACStampContext
from .dcop import NewtonOptions, OperatingPoint, solve_dc
from .netlist import Circuit

__all__ = ["ACResult", "run_ac"]


@dataclass
class ACResult:
    """Complex node responses versus frequency."""

    circuit: Circuit
    frequencies: np.ndarray
    x: np.ndarray  # complex, shape (n_freq, size)

    def response(self, node: str) -> np.ndarray:
        idx = self.circuit.node_index(node)
        if idx < 0:
            return np.zeros(len(self.frequencies), dtype=complex)
        return self.x[:, idx]

    def differential(self, node_p: str, node_n: str) -> np.ndarray:
        return self.response(node_p) - self.response(node_n)

    def magnitude(self, node: str) -> np.ndarray:
        return np.abs(self.response(node))

    def resonance_frequency(self, node: str) -> float:
        """Frequency of the magnitude peak at ``node`` (grid resolution)."""
        mag = self.magnitude(node)
        if mag.size < 3:
            raise AnalysisError("need at least 3 frequency points")
        return float(self.frequencies[int(np.argmax(mag))])

    def quality_factor(self, node: str) -> float:
        """Q from the -3 dB bandwidth of the magnitude peak at ``node``."""
        mag = self.magnitude(node)
        peak_idx = int(np.argmax(mag))
        peak = mag[peak_idx]
        if peak_idx in (0, mag.size - 1):
            raise AnalysisError("resonance peak is at the edge of the sweep")
        half = peak / np.sqrt(2.0)
        lower = upper = None
        for i in range(peak_idx, 0, -1):
            if mag[i - 1] <= half:
                f0, f1 = self.frequencies[i - 1], self.frequencies[i]
                m0, m1 = mag[i - 1], mag[i]
                lower = f0 + (half - m0) / (m1 - m0) * (f1 - f0)
                break
        for i in range(peak_idx, mag.size - 1):
            if mag[i + 1] <= half:
                f0, f1 = self.frequencies[i], self.frequencies[i + 1]
                m0, m1 = mag[i], mag[i + 1]
                upper = f0 + (half - m0) / (m1 - m0) * (f1 - f0)
                break
        if lower is None or upper is None:
            raise AnalysisError("-3 dB points not bracketed by the sweep")
        bandwidth = upper - lower
        return float(self.frequencies[peak_idx] / bandwidth)


def run_ac(
    circuit: Circuit,
    frequencies: Sequence[float],
    operating_point: Optional[OperatingPoint] = None,
    newton: Optional[NewtonOptions] = None,
    backend: object = "auto",
    preflight: str = "off",
) -> ACResult:
    """Solve the linearized circuit at each frequency.

    AC stimuli are taken from each source's ``ac_magnitude``.
    ``backend`` selects the linear-algebra path (see
    :mod:`~repro.circuits.backend`): with the sparse backend each
    frequency point assembles complex COO triplets and solves through
    a CSR splu factorization instead of a dense complex matrix.
    ``preflight`` runs the structural netlist lint first (``"warn"``
    emits warnings, ``"raise"`` aborts on error findings).
    """
    size = circuit.prepare()
    if preflight != "off":
        from .preflight import apply_preflight

        apply_preflight(circuit, preflight, analysis="ac")
    backend_obj = resolve_backend(backend, size)
    freqs = np.asarray(list(frequencies), dtype=float)
    if freqs.size == 0 or np.any(freqs <= 0):
        raise AnalysisError("frequencies must be positive and non-empty")
    if operating_point is None:
        operating_point = solve_dc(circuit, options=newton, backend=backend_obj)
    solutions = np.zeros((freqs.size, size), dtype=complex)
    for k, freq in enumerate(freqs):
        omega = 2.0 * np.pi * freq
        ctx = ACStampContext(
            G=(
                np.zeros((size, size), dtype=complex)
                if backend_obj.is_dense
                else None
            ),
            rhs=np.zeros(size, dtype=complex),
            omega=omega,
            x_op=operating_point.x,
        )
        for component in circuit:
            component.stamp_ac(ctx)
        for i in range(circuit.n_nodes):
            ctx.add_G(i, i, 1e-12)
        if backend_obj.is_dense:
            try:
                solutions[k] = np.linalg.solve(ctx.G, ctx.rhs)
            except np.linalg.LinAlgError:
                solutions[k], *_ = np.linalg.lstsq(ctx.G, ctx.rhs, rcond=None)
        else:
            rows, cols, vals = ctx.coo()
            matrix = SparseBackend.csr_from_coo(rows, cols, vals, size)
            solutions[k] = backend_obj.factor(matrix).solve(ctx.rhs)
    return ACResult(circuit=circuit, frequencies=freqs, x=solutions)
