"""Controlled sources: VCCS, VCVS, and a nonlinear behavioural VCCS.

The nonlinear VCCS is the workhorse of the oscillator model: the
current-limited Gm driver of the paper (Fig 2) is a transconductor
whose output current saturates at ``±IM``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import NetlistError
from .component import ACStampContext, Component, StampContext

__all__ = ["VCCS", "VCVS", "NonlinearVCCS"]


class VCCS(Component):
    """Linear voltage-controlled current source.

    Output current ``gm * (v(cp) - v(cn))`` flows from ``out_p`` through
    the source to ``out_n``.
    Node order: (out_p, out_n, ctrl_p, ctrl_n).
    """

    supports_stamp_split = True

    def __init__(self, name: str, out_p: str, out_n: str, ctrl_p: str, ctrl_n: str, gm: float):
        super().__init__(name, (out_p, out_n, ctrl_p, ctrl_n))
        self.gm = float(gm)

    def stamp(self, ctx: StampContext) -> None:
        op, on, cp, cn = self._n
        sys = ctx.system
        sys.add_G(op, cp, self.gm)
        sys.add_G(op, cn, -self.gm)
        sys.add_G(on, cp, -self.gm)
        sys.add_G(on, cn, self.gm)

    def stamp_static(self, ctx: StampContext) -> None:
        self.stamp(ctx)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        op, on, cp, cn = self._n
        ctx.add_G(op, cp, self.gm)
        ctx.add_G(op, cn, -self.gm)
        ctx.add_G(on, cp, -self.gm)
        ctx.add_G(on, cn, self.gm)


class VCVS(Component):
    """Linear voltage-controlled voltage source with gain ``mu``.

    ``v(out_p) - v(out_n) = mu * (v(ctrl_p) - v(ctrl_n))``.
    Node order: (out_p, out_n, ctrl_p, ctrl_n).
    """

    n_branches = 1
    supports_stamp_split = True

    def __init__(self, name: str, out_p: str, out_n: str, ctrl_p: str, ctrl_n: str, mu: float):
        super().__init__(name, (out_p, out_n, ctrl_p, ctrl_n))
        self.mu = float(mu)

    def _stamp_common(self, add_G) -> None:
        op, on, cp, cn = self._n
        br = self._b[0]
        add_G(op, br, 1.0)
        add_G(on, br, -1.0)
        add_G(br, op, 1.0)
        add_G(br, on, -1.0)
        add_G(br, cp, -self.mu)
        add_G(br, cn, self.mu)

    def stamp(self, ctx: StampContext) -> None:
        self._stamp_common(ctx.system.add_G)

    def stamp_static(self, ctx: StampContext) -> None:
        self._stamp_common(ctx.system.add_G)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        self._stamp_common(ctx.add_G)


class NonlinearVCCS(Component):
    """Behavioural transconductor ``i = f(v_ctrl)`` with Newton stamping.

    Parameters
    ----------
    func:
        Output current as a function of the differential control voltage
        ``v(ctrl_p) - v(ctrl_n)``.  Current flows from ``out_p`` through
        the source to ``out_n``.
    dfunc:
        Optional analytic derivative.  When omitted the derivative is
        computed by central finite differences with a small step, which
        is adequate for the smooth saturating characteristics used here.
    pair:
        Optional fused evaluation returning ``(i, di/dv)`` from one
        call.  The transient hot loop linearizes this device at every
        Newton iterate, so folding the value and slope into a single
        characteristic evaluation (one ``tanh`` instead of three)
        measurably speeds up oscillator startup runs.  Takes
        precedence over ``func``/``dfunc`` inside :meth:`linearize`.
    vector_pair, vector_params:
        Optional *batchable* characteristic family: ``vector_pair``
        is a callable ``(v, *params) -> (i, di/dv)`` accepting numpy
        arrays broadcast elementwise, and ``vector_params`` are this
        device's parameter values within the family.  The batched
        lockstep transient engine (:mod:`~repro.circuits.batched`)
        uses it to linearize the *same* device across all Monte-Carlo
        samples in one vectorized call: devices whose ``vector_pair``
        compare equal are stacked, their per-sample ``vector_params``
        become arrays.  Must agree with the scalar linearization
        (``pair`` if given, else ``func``/``dfunc``) — checked at
        construction at a few probe voltages.
    """

    def __init__(
        self,
        name: str,
        out_p: str,
        out_n: str,
        ctrl_p: str,
        ctrl_n: str,
        func: Callable[[float], float],
        dfunc: Optional[Callable[[float], float]] = None,
        fd_step: float = 1e-6,
        pair: Optional[Callable[[float], "tuple[float, float]"]] = None,
        vector_pair: Optional[Callable[..., "tuple[np.ndarray, np.ndarray]"]] = None,
        vector_params: "tuple[float, ...]" = (),
    ):
        super().__init__(name, (out_p, out_n, ctrl_p, ctrl_n))
        if not callable(func):
            raise NetlistError(f"{name}: func must be callable")
        self.func = func
        self.dfunc = dfunc
        self.pair = pair
        if fd_step <= 0:
            raise NetlistError(f"{name}: fd_step must be positive")
        self.fd_step = fd_step
        self.vector_pair = vector_pair
        self.vector_params = tuple(float(p) for p in vector_params)
        if vector_pair is not None:
            # Probe off-origin too: odd characteristics (every limiter
            # family here) agree with anything at v = 0, so a wrong
            # sign or scale must be caught away from the origin.  The
            # reference is linearize() itself — the pair-precedence
            # rule included — since that is exactly what the batched
            # engine's vectorized call replaces.
            for v_probe in (0.0, 1e-3, -1e-3):
                i_vec, g_vec = vector_pair(v_probe, *self.vector_params)
                g_ref, ieq_ref = self.linearize(v_probe)
                i_ref = ieq_ref + g_ref * v_probe
                if abs(float(i_vec) - i_ref) > 1e-9 * max(1.0, abs(i_ref)):
                    raise NetlistError(
                        f"{name}: vector_pair disagrees with the scalar "
                        f"characteristic at v={v_probe}"
                    )
                if abs(float(g_vec) - g_ref) > 1e-5 * abs(g_ref) + 1e-9:
                    raise NetlistError(
                        f"{name}: vector_pair slope disagrees with the "
                        f"scalar linearization at v={v_probe}"
                    )

    def is_nonlinear(self) -> bool:
        return True

    def _derivative(self, v: float) -> float:
        if self.dfunc is not None:
            return float(self.dfunc(v))
        h = self.fd_step
        return (self.func(v + h) - self.func(v - h)) / (2.0 * h)

    def linearize(self, v_ctrl: float) -> tuple:
        """``(gm, i_eq)`` of the Newton companion at a control voltage.

        The stamp is exactly ``gm`` times the rank-1 pattern
        ``(e_op - e_on)(e_cp - e_cn)^T`` plus the equivalent current
        ``i_eq`` from out_p to out_n; the transient engine's cached-
        Jacobian fast path consumes these two numbers directly instead
        of restamping a matrix.
        """
        if self.pair is not None:
            i_now, gm = self.pair(v_ctrl)
            return gm, i_now - gm * v_ctrl
        i_now = float(self.func(v_ctrl))
        gm = self._derivative(v_ctrl)
        return gm, i_now - gm * v_ctrl

    def stamp(self, ctx: StampContext) -> None:
        op, on, cp, cn = self._n
        v_ctrl = ctx.v(cp) - ctx.v(cn)
        gm, i_eq = self.linearize(v_ctrl)
        sys = ctx.system
        # Linearized: i = i_now + gm*(v_ctrl - v_ctrl*)
        sys.add_G(op, cp, gm)
        sys.add_G(op, cn, -gm)
        sys.add_G(on, cp, -gm)
        sys.add_G(on, cn, gm)
        sys.stamp_current(op, on, i_eq)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        op, on, cp, cn = self._n
        v_ctrl = ctx.v_op(cp) - ctx.v_op(cn)
        gm = self._derivative(v_ctrl)
        ctx.add_G(op, cp, gm)
        ctx.add_G(op, cn, -gm)
        ctx.add_G(on, cp, -gm)
        ctx.add_G(on, cn, gm)

    def output_current(self, x: np.ndarray) -> float:
        """Output current at a converged solution ``x``."""
        cp, cn = self._n[2], self._n[3]
        vp = x[cp] if cp >= 0 else 0.0
        vn = x[cn] if cn >= 0 else 0.0
        return float(self.func(vp - vn))
