"""Shared dense linear-solve and Newton-damping utilities.

Both analyses (:mod:`~repro.circuits.dcop` and
:mod:`~repro.circuits.transient`) solve ``G @ x = rhs`` systems and
damp Newton updates the same way; this module is the single home for
that logic so the two engines cannot drift apart again.

Three layers:

* :func:`solve_dense` — one-shot solve with a least-squares fallback
  for singular systems (floating nodes under fault injection).
* :func:`damp_voltage_delta` — the update-damping rule: clamp the
  per-iteration change of the *node voltages* only.  Branch currents
  are linear consequences of the voltages and may legitimately jump
  by large amounts in one iteration, so they are never the limiting
  unknowns (this was historically inconsistent between the DC and
  transient Newton loops).
* :class:`ReusableLU` — a factorization cached across many solves
  with the same matrix: LU (``scipy.linalg.lu_factor``/``lu_solve``)
  for large systems, an explicit inverse for small ones where the
  LAPACK call overhead dominates the arithmetic.  Used by the
  transient engine for fully linear circuits (one factorization for
  the whole run) and as the frozen Jacobian of the chord-Newton mode.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # scipy is an optional accelerator; numpy covers every path.
    from scipy.linalg import lu_factor as _lu_factor, lu_solve as _lu_solve

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _HAVE_SCIPY = False

__all__ = ["solve_dense", "damp_voltage_delta", "ReusableLU"]

#: Below this system size an explicit inverse plus ``dot`` beats the
#: per-call overhead of LAPACK's triangular solves by a wide margin.
_SMALL_SYSTEM = 64


def solve_dense(G: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``G @ x = rhs`` with a least-squares fallback.

    The fallback keeps pathological (singular) systems — floating
    nodes mid fault-injection, fully open switches — from aborting an
    analysis; the minimum-norm solution is the physically sensible
    answer there.
    """
    try:
        return np.linalg.solve(G, rhs)
    except np.linalg.LinAlgError:
        solution, *_ = np.linalg.lstsq(G, rhs, rcond=None)
        return solution


def damp_voltage_delta(
    delta: np.ndarray, n_nodes: int, max_step: float
) -> Tuple[np.ndarray, float]:
    """Clamp a Newton update by its largest node-voltage component.

    Returns ``(damped_delta, max_v_delta)`` where ``max_v_delta`` is
    the largest absolute node-voltage change *after* damping (the
    quantity the convergence test monitors).  The whole vector is
    scaled uniformly so the search direction is preserved.
    """
    v_delta = delta[:n_nodes]
    max_delta = float(np.abs(v_delta).max()) if v_delta.size else 0.0
    if max_delta > max_step:
        delta = delta * (max_step / max_delta)
        max_delta = max_step
    return delta, max_delta


class ReusableLU:
    """A cached factorization of a dense MNA matrix.

    ``factor(G)`` captures the matrix; ``solve(rhs)`` reuses the
    factorization for any number of right-hand sides.  Singular
    matrices degrade to the least-squares fallback transparently so
    callers never need their own error handling.

    Strategy by size: small systems (< ``_SMALL_SYSTEM`` unknowns) are
    inverted explicitly once — a 6x6 ``inv`` costs one LAPACK call and
    each subsequent solve is a sub-microsecond ``dot`` — while larger
    systems use partial-pivoting LU, which is the numerically careful
    choice when conditioning matters more than call overhead.
    """

    def __init__(self, G: Optional[np.ndarray] = None):
        self._inv: Optional[np.ndarray] = None
        self._lu = None
        self._g: Optional[np.ndarray] = None
        self._singular = False
        self._condest: Optional[float] = None
        self.n_factorizations = 0
        if G is not None:
            self.factor(G)

    def factor(self, G: np.ndarray) -> None:
        """(Re)factorize; counts factorizations for diagnostics."""
        self._g = np.array(G, dtype=float, copy=True)
        self._inv = None
        self._lu = None
        self._singular = False
        self._condest = None
        self.n_factorizations += 1
        try:
            if G.shape[0] < _SMALL_SYSTEM or not _HAVE_SCIPY:
                self._inv = np.linalg.inv(self._g)
            else:
                self._lu = _lu_factor(self._g, check_finite=False)
        except (np.linalg.LinAlgError, ValueError):
            self._singular = True

    @property
    def is_factored(self) -> bool:
        return self._g is not None

    @property
    def is_singular(self) -> bool:
        return self._singular

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve against the captured matrix for one right-hand side."""
        if self._g is None:
            raise ValueError("ReusableLU.solve() before factor()")
        if self._singular:
            solution, *_ = np.linalg.lstsq(self._g, rhs, rcond=None)
            return solution
        if self._inv is not None:
            solution = self._inv.dot(rhs)
        else:
            solution = _lu_solve(self._lu, rhs, check_finite=False)
        if not np.isfinite(solution).all() and np.isfinite(rhs).all():
            # A zero/denormal pivot slipped through factorization
            # (partial-pivoting LU of an exactly singular matrix does
            # not raise; it just produces Inf/NaN at solve time).
            # Degrade to the minimum-norm answer, permanently, like
            # the factor-time singular path.
            self._singular = True
            self._condest = None
            try:
                solution, *_ = np.linalg.lstsq(self._g, rhs, rcond=None)
            except np.linalg.LinAlgError:  # pragma: no cover - defensive
                self._singular = False
        return solution

    def solve_transposed(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``G.T @ x = rhs`` against the same factorization.

        Used only by the 1-norm condition estimator; singular systems
        fall back to least squares on the transpose.
        """
        if self._g is None:
            raise ValueError("ReusableLU.solve_transposed() before factor()")
        if self._singular:
            solution, *_ = np.linalg.lstsq(self._g.T, rhs, rcond=None)
            return solution
        if self._inv is not None:
            return self._inv.T.dot(rhs)
        return _lu_solve(self._lu, rhs, trans=1, check_finite=False)

    def condest(self) -> float:
        """Estimated 1-norm condition number of the captured matrix.

        Exact when the explicit inverse is cached (small systems);
        otherwise a Hager-style estimate costing a few triangular
        solves.  ``inf`` for singular (degraded) factorizations.
        Cached per factorization; read-only with respect to solver
        state, so arming it never changes results.
        """
        if self._condest is not None:
            return self._condest
        if self._g is None:
            raise ValueError("ReusableLU.condest() before factor()")
        if self._singular:
            self._condest = float("inf")
            return self._condest
        norm_g = float(np.abs(self._g).sum(axis=0).max()) if self._g.size else 0.0
        if not np.isfinite(norm_g):
            self._condest = float("inf")
            return self._condest
        if self._inv is not None:
            norm_inv = float(np.abs(self._inv).sum(axis=0).max())
            estimate = norm_g * norm_inv
        else:
            from .health import condest_from_solves

            estimate = condest_from_solves(
                norm_g, self.solve, self.solve_transposed, self._g.shape[0]
            )
        self._condest = float(estimate) if np.isfinite(estimate) else float("inf")
        return self._condest
