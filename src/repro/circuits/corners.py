"""Process and temperature corners for device cards.

The paper's driver lives in an automotive "harsh environment"; the
safety properties (notably the supply-loss isolation of Fig 11) must
hold across process spread and -40..150 C.  A :class:`ProcessCorner`
rescales a level-1 model card with the standard first-order laws:

* threshold: ``vt(T) = vt(27C) - 1 mV/K * (T - 27)`` plus a process
  shift (slow = higher |vt|, fast = lower),
* mobility/beta: ``beta(T) = beta(27C) * (300/T_K)^1.5`` times a
  process scale,
* junction saturation current: doubles roughly every 10 K.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .mosfet import MosfetParams

__all__ = ["ProcessCorner", "TYPICAL", "SLOW_COLD", "SLOW_HOT", "FAST_COLD", "FAST_HOT"]

_VT_TEMPCO = -1.0e-3  # V/K
_T_NOM_C = 27.0
_ISAT_DOUBLING_K = 10.0


@dataclass(frozen=True)
class ProcessCorner:
    """A (process, temperature) pair with first-order scaling laws."""

    name: str
    temperature_c: float = _T_NOM_C
    #: Process shift of |vt| in volts (positive = slower devices).
    vt_process_shift: float = 0.0
    #: Process multiplier on beta (mobility / oxide spread).
    beta_process_scale: float = 1.0

    def __post_init__(self) -> None:
        if not -55.0 <= self.temperature_c <= 175.0:
            raise ConfigurationError("temperature outside -55..175 C")
        if self.beta_process_scale <= 0:
            raise ConfigurationError("beta_process_scale must be positive")

    @property
    def temperature_k(self) -> float:
        return self.temperature_c + 273.15

    def scale(self, params: MosfetParams) -> MosfetParams:
        """Model card at this corner."""
        dt = self.temperature_c - _T_NOM_C
        vt0 = max(params.vt0 + self.vt_process_shift + _VT_TEMPCO * dt, 0.05)
        beta = (
            params.beta
            * self.beta_process_scale
            * (300.15 / self.temperature_k) ** 1.5
        )
        i_sat = params.i_sat_body * 2.0 ** (dt / _ISAT_DOUBLING_K)
        return MosfetParams(
            polarity=params.polarity,
            beta=beta,
            vt0=vt0,
            lam=params.lam,
            gamma=params.gamma,
            phi=params.phi,
            i_sat_body=i_sat,
        )


TYPICAL = ProcessCorner("tt-27C")
SLOW_COLD = ProcessCorner(
    "ss-m40C", temperature_c=-40.0, vt_process_shift=+0.08, beta_process_scale=0.85
)
SLOW_HOT = ProcessCorner(
    "ss-125C", temperature_c=125.0, vt_process_shift=+0.08, beta_process_scale=0.85
)
FAST_COLD = ProcessCorner(
    "ff-m40C", temperature_c=-40.0, vt_process_shift=-0.08, beta_process_scale=1.15
)
FAST_HOT = ProcessCorner(
    "ff-125C", temperature_c=125.0, vt_process_shift=-0.08, beta_process_scale=1.15
)
