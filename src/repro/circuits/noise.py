"""Small-signal noise analysis.

Computes the output noise voltage density contributed by every
resistor's thermal (Johnson) noise, by solving the linearized circuit
once per noise source per frequency with a unit AC current injected
across the resistor and scaling by its noise density ``4kT/R``.

Validated in the tests against the two classic results:

* single-pole RC: output density ``sqrt(4kTR) * |H(f)|``,
* total integrated output noise of any RC network: ``kT/C``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from .component import ACStampContext
from .dcop import NewtonOptions, OperatingPoint, solve_dc
from .elements import Resistor
from .netlist import Circuit

__all__ = ["NoiseResult", "run_noise", "BOLTZMANN", "T_ROOM"]

BOLTZMANN = 1.380649e-23
T_ROOM = 300.0


@dataclass
class NoiseResult:
    """Output noise density and per-source breakdown."""

    frequencies: np.ndarray
    #: Total output noise voltage density, V/sqrt(Hz), per frequency.
    total_density: np.ndarray
    #: Per-resistor contribution (density^2), keyed by component name.
    contributions: Dict[str, np.ndarray]

    def density_at(self, frequency: float) -> float:
        return float(np.interp(frequency, self.frequencies, self.total_density))

    def integrated_rms(self) -> float:
        """RMS output noise integrated over the analysis band."""
        power = np.trapezoid(self.total_density**2, self.frequencies)
        return float(math.sqrt(power))

    def dominant_source(self, frequency: float) -> str:
        """Name of the resistor contributing most at ``frequency``."""
        best_name = ""
        best_value = -1.0
        for name, contribution in self.contributions.items():
            value = float(np.interp(frequency, self.frequencies, contribution))
            if value > best_value:
                best_value = value
                best_name = name
        return best_name


def run_noise(
    circuit: Circuit,
    frequencies: Sequence[float],
    output_node: str,
    temperature: float = T_ROOM,
    operating_point: Optional[OperatingPoint] = None,
    newton: Optional[NewtonOptions] = None,
) -> NoiseResult:
    """Thermal-noise analysis at ``output_node``.

    Every :class:`Resistor` contributes an independent noise current
    source ``i_n^2 = 4kT/R`` across its terminals; contributions add
    in power at the output.
    """
    circuit.prepare()
    freqs = np.asarray(list(frequencies), dtype=float)
    if freqs.size == 0 or np.any(freqs <= 0):
        raise AnalysisError("frequencies must be positive and non-empty")
    if temperature <= 0:
        raise AnalysisError("temperature must be positive")
    if operating_point is None:
        operating_point = solve_dc(circuit, options=newton)
    out_idx = circuit.node_index(output_node)
    if out_idx < 0:
        raise AnalysisError("output node must not be ground")
    resistors: List[Resistor] = [
        component for component in circuit if isinstance(component, Resistor)
    ]
    if not resistors:
        raise AnalysisError("circuit has no resistors, hence no thermal noise")

    size = circuit.size
    contributions: Dict[str, np.ndarray] = {
        r.name: np.zeros(freqs.size) for r in resistors
    }
    for k, freq in enumerate(freqs):
        omega = 2.0 * math.pi * freq
        ctx = ACStampContext(
            G=np.zeros((size, size), dtype=complex),
            rhs=np.zeros(size, dtype=complex),
            omega=omega,
            x_op=operating_point.x,
        )
        for component in circuit:
            component.stamp_ac(ctx)
        for i in range(circuit.n_nodes):
            ctx.G[i, i] += 1e-12
        # Factor once per frequency, reuse for every source.
        lu = np.linalg.inv(ctx.G)
        for resistor in resistors:
            a, b = resistor._n  # noqa: SLF001 - same-package access
            rhs = np.zeros(size, dtype=complex)
            if a >= 0:
                rhs[a] -= 1.0
            if b >= 0:
                rhs[b] += 1.0
            transfer = (lu @ rhs)[out_idx]
            i_n_sq = 4.0 * BOLTZMANN * temperature / resistor.resistance
            contributions[resistor.name][k] = i_n_sq * float(np.abs(transfer)) ** 2

    total_sq = np.zeros(freqs.size)
    for contribution in contributions.values():
        total_sq += contribution
    return NoiseResult(
        frequencies=freqs,
        total_density=np.sqrt(total_sq),
        contributions=contributions,
    )
