"""Component base class and MNA stamping infrastructure.

The simulator uses classic Modified Nodal Analysis (MNA): the unknown
vector ``x`` holds node voltages (ground excluded) followed by branch
currents for components that need them (voltage sources, inductors,
VCVS).  Each component *stamps* its contribution into the system matrix
``G`` and right-hand side ``rhs`` so that ``G @ x = rhs`` is the
linearized circuit equation at the current Newton iterate.

Stamp streams and the structure/value split
-------------------------------------------
A component never sees the storage behind the system it stamps into:
:class:`StampContext.system` is either a dense :class:`MNASystem` or a
:class:`TripletSystem` that *records* the stamp calls as COO triplets
``(row, col, value)``.  The triplet form is what makes the linear-
algebra backend pluggable (:mod:`~repro.circuits.backend`): one stamp
stream, two finalizations —

* **dense** — :meth:`StampPattern.dense` replays the stream into a
  ``(n, n)`` array with ``np.add.at``, accumulating in exact stream
  order, so it is bit-identical to stamping into a preallocated dense
  matrix directly;
* **sparse** — :meth:`StampPattern.csr_arrays` folds duplicate
  positions into canonical CSR ``(data, indices, indptr)`` arrays.

The *structure* of a netlist's stamp stream (which positions are
touched, in what order) is a function of the topology only; the
*values* change with ``(dt, method)`` or element parameters.
:class:`StampPattern` captures the structure once per netlist; every
later assembly records values only and finalizes through the cached
pattern, which is how the per-``dt`` cache rebuilds base matrices
without re-deriving sparsity.

Sign conventions (SPICE compatible)
-----------------------------------
* KCL rows: currents *leaving* a node through components appear with a
  positive sign on the matrix side.
* A current source ``(n+, n-)`` drives positive current from ``n+``
  through itself to ``n-`` (it removes current from ``n+``).
* A voltage-source branch current is positive when flowing from ``n+``
  through the source to ``n-``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import NetlistError
from .integration import StepCoeffs, resolve_method

__all__ = [
    "MNASystem",
    "TripletSystem",
    "StampPattern",
    "StampContext",
    "ACStampContext",
    "Component",
    "GROUND",
]

#: Index used for the ground node; stamps against it are discarded.
GROUND = -1


class MNASystem:
    """Dense MNA matrix and right-hand side with ground-aware stamping."""

    def __init__(self, size: int):
        if size <= 0:
            raise NetlistError("MNA system must have at least one unknown")
        self.size = size
        self.G = np.zeros((size, size))
        self.rhs = np.zeros(size)

    def clear(self) -> None:
        self.G[:, :] = 0.0
        self.rhs[:] = 0.0

    def add_G(self, row: int, col: int, value: float) -> None:
        """Add ``value`` at (row, col); ground indices are ignored."""
        if row >= 0 and col >= 0:
            self.G[row, col] += value

    def add_rhs(self, row: int, value: float) -> None:
        """Add ``value`` to the RHS at ``row``; ground is ignored."""
        if row >= 0:
            self.rhs[row] += value

    def stamp_conductance(self, a: int, b: int, g: float) -> None:
        """Stamp a two-terminal conductance ``g`` between nodes a and b."""
        self.add_G(a, a, g)
        self.add_G(b, b, g)
        self.add_G(a, b, -g)
        self.add_G(b, a, -g)

    def stamp_current(self, a: int, b: int, current: float) -> None:
        """Stamp a current flowing from node a through the element to b."""
        self.add_rhs(a, -current)
        self.add_rhs(b, current)


class TripletSystem:
    """A stamp target that records matrix entries as COO triplets.

    Presents the same stamping interface as :class:`MNASystem`
    (``add_G``/``add_rhs``/``stamp_conductance``/``stamp_current``), so
    components stamp into it unchanged; instead of writing a dense
    array it appends ``(row, col, value)`` triplets in call order.
    The right-hand side stays a dense vector — it is a vector.

    Finalize the recorded stream through :meth:`pattern` (first
    assembly of a netlist) or an existing :class:`StampPattern` whose
    structure the stream repeats (every later assembly).
    """

    def __init__(self, size: int):
        if size <= 0:
            raise NetlistError("MNA system must have at least one unknown")
        self.size = size
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.vals: List[float] = []
        self.rhs = np.zeros(size)

    def clear(self) -> None:
        self.rows.clear()
        self.cols.clear()
        self.vals.clear()
        self.rhs[:] = 0.0

    def add_G(self, row: int, col: int, value: float) -> None:
        """Record ``value`` at (row, col); ground indices are ignored."""
        if row >= 0 and col >= 0:
            self.rows.append(row)
            self.cols.append(col)
            self.vals.append(value)

    def add_rhs(self, row: int, value: float) -> None:
        if row >= 0:
            self.rhs[row] += value

    def stamp_conductance(self, a: int, b: int, g: float) -> None:
        self.add_G(a, a, g)
        self.add_G(b, b, g)
        self.add_G(a, b, -g)
        self.add_G(b, a, -g)

    def stamp_current(self, a: int, b: int, current: float) -> None:
        self.add_rhs(a, -current)
        self.add_rhs(b, current)

    def values(self) -> np.ndarray:
        """The value half of the stream as an array."""
        return np.asarray(self.vals, dtype=float)

    def pattern(self) -> "StampPattern":
        """The structure half of the stream (see :class:`StampPattern`)."""
        return StampPattern(self.size, self.rows, self.cols)


class StampPattern:
    """The structure half of a stamp stream, computed once per netlist.

    Captures which ``(row, col)`` positions a stamp stream touches and
    in what order, plus the canonical CSR structure of the distinct
    positions.  Given the *value* stream of any assembly that repeats
    the same structure (same components, same stamping order — the
    per-``dt`` base-matrix rebuilds), it finalizes either way:

    * :meth:`dense` replays the triplets into a dense matrix with
      ``np.add.at``, which accumulates sequentially in stream order —
      bit-identical to stamping into a preallocated dense array.
    * :meth:`csr_arrays` folds duplicates into CSR ``data`` (also in
      stream order per cell, so each cell's float value is bit-equal
      to the dense cell).
    """

    def __init__(self, size: int, rows: Sequence[int], cols: Sequence[int]):
        self.size = size
        self.rows = np.asarray(rows, dtype=np.intp)
        self.cols = np.asarray(cols, dtype=np.intp)
        self.stream_length = len(self.rows)
        order = np.lexsort((self.cols, self.rows))
        r_sorted = self.rows[order]
        c_sorted = self.cols[order]
        if self.stream_length:
            first = np.empty(self.stream_length, dtype=bool)
            first[0] = True
            first[1:] = (np.diff(r_sorted) != 0) | (np.diff(c_sorted) != 0)
            slot_sorted = np.cumsum(first) - 1
            #: Stream position -> index of its distinct CSR slot.
            self.slot = np.empty(self.stream_length, dtype=np.intp)
            self.slot[order] = slot_sorted
            self.nnz = int(slot_sorted[-1]) + 1
            unique_rows = r_sorted[first]
            #: CSR column indices of the distinct positions.
            self.indices = c_sorted[first].astype(np.int32)
        else:
            self.slot = np.empty(0, dtype=np.intp)
            self.nnz = 0
            unique_rows = np.empty(0, dtype=np.intp)
            self.indices = np.empty(0, dtype=np.int32)
        counts = np.bincount(unique_rows, minlength=size)
        #: CSR row pointers of the distinct positions.
        self.indptr = np.zeros(size + 1, dtype=np.int32)
        np.cumsum(counts, out=self.indptr[1:])

    def matches(self, system: TripletSystem) -> bool:
        """Whether a recorded stream repeats this pattern's structure."""
        return (
            len(system.rows) == self.stream_length
            and np.array_equal(self.rows, np.asarray(system.rows, dtype=np.intp))
            and np.array_equal(self.cols, np.asarray(system.cols, dtype=np.intp))
        )

    def dense(self, values: np.ndarray) -> np.ndarray:
        """Dense finalization of a value stream (stream-order adds)."""
        G = np.zeros((self.size, self.size))
        np.add.at(G, (self.rows, self.cols), values)
        return G

    def csr_arrays(
        self, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR finalization ``(data, indices, indptr)`` of a value stream."""
        data = np.zeros(self.nnz, dtype=np.asarray(values).dtype)
        np.add.at(data, self.slot, values)
        return data, self.indices, self.indptr


@dataclass
class StampContext:
    """Everything a component needs to stamp itself for DC or transient.

    Attributes
    ----------
    system:
        The MNA system being assembled.
    x:
        Current Newton iterate (node voltages then branch currents).
    time:
        Simulation time of the step being solved (0 for DC).
    dt:
        Time step, or ``None`` for DC / operating-point analysis.
    method:
        Integration-method *name* (``"trap"``, ``"be"``, ``"bdf2"``,
        ``"gear"``); informational — components never branch on it.
    coeffs:
        The :class:`~repro.circuits.integration.StepCoeffs` driving
        the companion formulas (leading coefficient for the matrix
        side, newest-point history weights for the one-step RHS
        side).  Auto-resolved from ``method`` for the one-step
        methods when not supplied, so existing context constructors
        keep working; multistep engines install the active order's
        coefficients explicitly.
    source_scale:
        Homotopy factor in [0, 1] applied to independent sources during
        source-stepping; 1.0 for normal solves.
    gmin:
        Conductance added from every device junction to help
        convergence (also swept during gmin-stepping).
    states:
        Mapping from component name to its integrator state (previous
        voltages/currents), managed by the transient engine.
    """

    system: MNASystem
    x: np.ndarray
    time: float = 0.0
    dt: Optional[float] = None
    method: str = "trap"
    source_scale: float = 1.0
    gmin: float = 1e-12
    states: Dict[str, object] = field(default_factory=dict)
    coeffs: Optional[StepCoeffs] = None

    def __post_init__(self) -> None:
        if (
            self.coeffs is None
            and self.dt is not None
            and isinstance(self.method, str)
        ):
            # Transient contexts need companion coefficients; a typo'd
            # method name fails here (SimulationError naming it) rather
            # than as an opaque AttributeError inside a stamp call.
            method = resolve_method(self.method)
            if method.is_multistep:
                raise NetlistError(
                    f"method {method.name!r} needs engine-installed "
                    "StepCoeffs (a committed-state history); generic "
                    "StampContext construction supports the one-step "
                    "methods only"
                )
            self.coeffs = method.base_coeffs(method.max_order)

    def v(self, index: int) -> float:
        """Voltage (or branch current) at unknown ``index``; ground is 0 V."""
        if index < 0:
            return 0.0
        return float(self.x[index])

    @property
    def is_transient(self) -> bool:
        return self.dt is not None


@dataclass
class ACStampContext:
    """Stamping context for small-signal AC analysis.

    ``x_op`` is the DC operating point around which nonlinear devices
    are linearized.  ``system``/``rhs`` are complex.

    With ``G=None`` the context records matrix stamps as complex COO
    triplets instead (the AC counterpart of :class:`TripletSystem`),
    which the sparse backend finalizes into a CSR matrix; components
    stamp identically either way.
    """

    G: Optional[np.ndarray]
    rhs: np.ndarray
    omega: float
    x_op: np.ndarray

    def __post_init__(self) -> None:
        self._rows: List[int] = []
        self._cols: List[int] = []
        self._vals: List[complex] = []

    def add_G(self, row: int, col: int, value: complex) -> None:
        if row < 0 or col < 0:
            return
        if self.G is not None:
            self.G[row, col] += value
        else:
            self._rows.append(row)
            self._cols.append(col)
            self._vals.append(value)

    def coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The recorded triplet stream (triplet mode only)."""
        return (
            np.asarray(self._rows, dtype=np.intp),
            np.asarray(self._cols, dtype=np.intp),
            np.asarray(self._vals, dtype=complex),
        )

    def add_rhs(self, row: int, value: complex) -> None:
        if row >= 0:
            self.rhs[row] += value

    def stamp_admittance(self, a: int, b: int, y: complex) -> None:
        self.add_G(a, a, y)
        self.add_G(b, b, y)
        self.add_G(a, b, -y)
        self.add_G(b, a, -y)

    def v_op(self, index: int) -> float:
        if index < 0:
            return 0.0
        return float(self.x_op[index])


class Component(ABC):
    """Base class for all circuit components.

    Subclasses declare how many extra branch-current unknowns they need
    via :attr:`n_branches` and implement :meth:`stamp`.

    Linear/nonlinear stamp split
    ----------------------------
    The transient engine assembles the system at every Newton iteration
    of every step; re-running every component's :meth:`stamp` there is
    almost entirely wasted work because linear components contribute
    the *same* matrix entries each time.  Components that can promise
    this set :attr:`supports_stamp_split` and factor their transient
    stamp into two halves:

    * :meth:`stamp_static` — matrix (``G``) entries that depend only on
      the component parameters and the integration setup ``(dt,
      method)``.  Assembled **once per run** into a cached base matrix.
    * :meth:`stamp_dynamic` — right-hand-side entries that may depend
      on the step time and the integrator state, but never on the
      Newton iterate ``x``.  Assembled **once per step**.

    The contract: in transient mode, ``stamp(ctx)`` must produce
    exactly the union of ``stamp_static(ctx)`` and
    ``stamp_dynamic(ctx)``.  Because a subclass can override
    :meth:`stamp` in ways the parent's split no longer describes, the
    engine only honours ``supports_stamp_split`` when it is declared
    in the component's own class body (see
    :meth:`~repro.circuits.netlist.Circuit.partition_components`);
    everything else — nonlinear devices, subclasses that did not
    re-declare the flag — is restamped in full at every iteration,
    which is always correct, just slower.
    """

    #: Number of extra branch-current unknowns this component adds.
    n_branches: int = 0

    #: Whether this component's transient stamp decomposes into a
    #: run-constant matrix part and an iterate-independent RHS part.
    supports_stamp_split: bool = False

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise NetlistError("component name must be non-empty")
        self.name = name
        self.nodes: Tuple[str, ...] = tuple(str(n) for n in nodes)
        # Resolved by Circuit.prepare():
        self._n: List[int] = []
        self._b: List[int] = []

    # -- wiring -----------------------------------------------------------

    def assign_indices(self, node_indices: Sequence[int], branch_start: int) -> None:
        """Called by the circuit once node/branch numbering is known."""
        if len(node_indices) != len(self.nodes):
            raise NetlistError(
                f"{self.name}: expected {len(self.nodes)} node indices, "
                f"got {len(node_indices)}"
            )
        self._n = list(node_indices)
        self._b = list(range(branch_start, branch_start + self.n_branches))

    @property
    def branch_indices(self) -> Tuple[int, ...]:
        return tuple(self._b)

    # -- behaviour ----------------------------------------------------------

    @abstractmethod
    def stamp(self, ctx: StampContext) -> None:
        """Stamp the (possibly linearized) component into the system."""

    def stamp_static(self, ctx: StampContext) -> None:
        """Stamp the run-constant matrix entries (transient only).

        Only called when :attr:`supports_stamp_split` is true.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support the stamp split"
        )

    def stamp_dynamic(self, ctx: StampContext) -> None:
        """Stamp the per-step RHS entries (transient only).

        Only called when :attr:`supports_stamp_split` is true.  The
        default is a no-op for components whose stamp is fully static.
        """

    def stamp_ac(self, ctx: ACStampContext) -> None:
        """Stamp the small-signal model; default: open circuit."""

    def is_nonlinear(self) -> bool:
        """Whether the component requires Newton iteration."""
        return False

    def init_state(self, x: np.ndarray) -> Optional[object]:
        """Initial integrator state from a converged DC solution."""
        return None

    def update_state(self, ctx: StampContext) -> Optional[object]:
        """New integrator state after a converged transient step."""
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} {self.nodes}>"
