"""Component base class and MNA stamping infrastructure.

The simulator uses classic Modified Nodal Analysis (MNA): the unknown
vector ``x`` holds node voltages (ground excluded) followed by branch
currents for components that need them (voltage sources, inductors,
VCVS).  Each component *stamps* its contribution into the system matrix
``G`` and right-hand side ``rhs`` so that ``G @ x = rhs`` is the
linearized circuit equation at the current Newton iterate.

Sign conventions (SPICE compatible)
-----------------------------------
* KCL rows: currents *leaving* a node through components appear with a
  positive sign on the matrix side.
* A current source ``(n+, n-)`` drives positive current from ``n+``
  through itself to ``n-`` (it removes current from ``n+``).
* A voltage-source branch current is positive when flowing from ``n+``
  through the source to ``n-``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import NetlistError

__all__ = ["MNASystem", "StampContext", "ACStampContext", "Component", "GROUND"]

#: Index used for the ground node; stamps against it are discarded.
GROUND = -1


class MNASystem:
    """Dense MNA matrix and right-hand side with ground-aware stamping."""

    def __init__(self, size: int):
        if size <= 0:
            raise NetlistError("MNA system must have at least one unknown")
        self.size = size
        self.G = np.zeros((size, size))
        self.rhs = np.zeros(size)

    def clear(self) -> None:
        self.G[:, :] = 0.0
        self.rhs[:] = 0.0

    def add_G(self, row: int, col: int, value: float) -> None:
        """Add ``value`` at (row, col); ground indices are ignored."""
        if row >= 0 and col >= 0:
            self.G[row, col] += value

    def add_rhs(self, row: int, value: float) -> None:
        """Add ``value`` to the RHS at ``row``; ground is ignored."""
        if row >= 0:
            self.rhs[row] += value

    def stamp_conductance(self, a: int, b: int, g: float) -> None:
        """Stamp a two-terminal conductance ``g`` between nodes a and b."""
        self.add_G(a, a, g)
        self.add_G(b, b, g)
        self.add_G(a, b, -g)
        self.add_G(b, a, -g)

    def stamp_current(self, a: int, b: int, current: float) -> None:
        """Stamp a current flowing from node a through the element to b."""
        self.add_rhs(a, -current)
        self.add_rhs(b, current)


@dataclass
class StampContext:
    """Everything a component needs to stamp itself for DC or transient.

    Attributes
    ----------
    system:
        The MNA system being assembled.
    x:
        Current Newton iterate (node voltages then branch currents).
    time:
        Simulation time of the step being solved (0 for DC).
    dt:
        Time step, or ``None`` for DC / operating-point analysis.
    method:
        Integration method, ``"trap"`` or ``"be"`` (backward Euler);
        only meaningful when ``dt`` is not ``None``.
    source_scale:
        Homotopy factor in [0, 1] applied to independent sources during
        source-stepping; 1.0 for normal solves.
    gmin:
        Conductance added from every device junction to help
        convergence (also swept during gmin-stepping).
    states:
        Mapping from component name to its integrator state (previous
        voltages/currents), managed by the transient engine.
    """

    system: MNASystem
    x: np.ndarray
    time: float = 0.0
    dt: Optional[float] = None
    method: str = "trap"
    source_scale: float = 1.0
    gmin: float = 1e-12
    states: Dict[str, object] = field(default_factory=dict)

    def v(self, index: int) -> float:
        """Voltage (or branch current) at unknown ``index``; ground is 0 V."""
        if index < 0:
            return 0.0
        return float(self.x[index])

    @property
    def is_transient(self) -> bool:
        return self.dt is not None


@dataclass
class ACStampContext:
    """Stamping context for small-signal AC analysis.

    ``x_op`` is the DC operating point around which nonlinear devices
    are linearized.  ``system``/``rhs`` are complex.
    """

    G: np.ndarray
    rhs: np.ndarray
    omega: float
    x_op: np.ndarray

    def add_G(self, row: int, col: int, value: complex) -> None:
        if row >= 0 and col >= 0:
            self.G[row, col] += value

    def add_rhs(self, row: int, value: complex) -> None:
        if row >= 0:
            self.rhs[row] += value

    def stamp_admittance(self, a: int, b: int, y: complex) -> None:
        self.add_G(a, a, y)
        self.add_G(b, b, y)
        self.add_G(a, b, -y)
        self.add_G(b, a, -y)

    def v_op(self, index: int) -> float:
        if index < 0:
            return 0.0
        return float(self.x_op[index])


class Component(ABC):
    """Base class for all circuit components.

    Subclasses declare how many extra branch-current unknowns they need
    via :attr:`n_branches` and implement :meth:`stamp`.

    Linear/nonlinear stamp split
    ----------------------------
    The transient engine assembles the system at every Newton iteration
    of every step; re-running every component's :meth:`stamp` there is
    almost entirely wasted work because linear components contribute
    the *same* matrix entries each time.  Components that can promise
    this set :attr:`supports_stamp_split` and factor their transient
    stamp into two halves:

    * :meth:`stamp_static` — matrix (``G``) entries that depend only on
      the component parameters and the integration setup ``(dt,
      method)``.  Assembled **once per run** into a cached base matrix.
    * :meth:`stamp_dynamic` — right-hand-side entries that may depend
      on the step time and the integrator state, but never on the
      Newton iterate ``x``.  Assembled **once per step**.

    The contract: in transient mode, ``stamp(ctx)`` must produce
    exactly the union of ``stamp_static(ctx)`` and
    ``stamp_dynamic(ctx)``.  Because a subclass can override
    :meth:`stamp` in ways the parent's split no longer describes, the
    engine only honours ``supports_stamp_split`` when it is declared
    in the component's own class body (see
    :meth:`~repro.circuits.netlist.Circuit.partition_components`);
    everything else — nonlinear devices, subclasses that did not
    re-declare the flag — is restamped in full at every iteration,
    which is always correct, just slower.
    """

    #: Number of extra branch-current unknowns this component adds.
    n_branches: int = 0

    #: Whether this component's transient stamp decomposes into a
    #: run-constant matrix part and an iterate-independent RHS part.
    supports_stamp_split: bool = False

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise NetlistError("component name must be non-empty")
        self.name = name
        self.nodes: Tuple[str, ...] = tuple(str(n) for n in nodes)
        # Resolved by Circuit.prepare():
        self._n: List[int] = []
        self._b: List[int] = []

    # -- wiring -----------------------------------------------------------

    def assign_indices(self, node_indices: Sequence[int], branch_start: int) -> None:
        """Called by the circuit once node/branch numbering is known."""
        if len(node_indices) != len(self.nodes):
            raise NetlistError(
                f"{self.name}: expected {len(self.nodes)} node indices, "
                f"got {len(node_indices)}"
            )
        self._n = list(node_indices)
        self._b = list(range(branch_start, branch_start + self.n_branches))

    @property
    def branch_indices(self) -> Tuple[int, ...]:
        return tuple(self._b)

    # -- behaviour ----------------------------------------------------------

    @abstractmethod
    def stamp(self, ctx: StampContext) -> None:
        """Stamp the (possibly linearized) component into the system."""

    def stamp_static(self, ctx: StampContext) -> None:
        """Stamp the run-constant matrix entries (transient only).

        Only called when :attr:`supports_stamp_split` is true.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support the stamp split"
        )

    def stamp_dynamic(self, ctx: StampContext) -> None:
        """Stamp the per-step RHS entries (transient only).

        Only called when :attr:`supports_stamp_split` is true.  The
        default is a no-op for components whose stamp is fully static.
        """

    def stamp_ac(self, ctx: ACStampContext) -> None:
        """Stamp the small-signal model; default: open circuit."""

    def is_nonlinear(self) -> bool:
        """Whether the component requires Newton iteration."""
        return False

    def init_state(self, x: np.ndarray) -> Optional[object]:
        """Initial integrator state from a converged DC solution."""
        return None

    def update_state(self, ctx: StampContext) -> Optional[object]:
        """New integrator state after a converged transient step."""
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} {self.nodes}>"
