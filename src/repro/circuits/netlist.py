"""Circuit container: nodes, components, and index assignment.

A :class:`Circuit` is a flat netlist.  Nodes are referenced by name;
``"0"`` and ``"gnd"`` are the ground node.  Convenience factory methods
(``circuit.resistor(...)`` etc.) build, register, and return the
component in one call, which keeps netlist-builder code readable.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import NetlistError
from .component import GROUND, Component
from .controlled import VCCS, VCVS, NonlinearVCCS
from .diode import DEFAULT_IS, DEFAULT_N, Diode
from .elements import Capacitor, Inductor, Resistor, Switch
from .mosfet import Mosfet, MosfetParams
from .sources import CurrentSource, ValueSpec, VoltageSource

__all__ = ["Circuit", "GROUND_NAMES"]

GROUND_NAMES = frozenset({"0", "gnd", "GND"})


class Circuit:
    """A mutable netlist that can be prepared for MNA analysis."""

    def __init__(self, title: str = ""):
        self.title = title
        self._components: Dict[str, Component] = {}
        self._node_order: List[str] = []
        self._node_index: Dict[str, int] = {}
        self._prepared = False
        self._n_branches = 0

    # -- netlist construction ------------------------------------------------

    def add(self, component: Component) -> Component:
        """Register a component; names must be unique."""
        if component.name in self._components:
            raise NetlistError(f"duplicate component name {component.name!r}")
        for node in component.nodes:
            self._register_node(node)
        self._components[component.name] = component
        self._prepared = False
        return component

    def _register_node(self, name: str) -> None:
        if name in GROUND_NAMES or name in self._node_index:
            return
        self._node_index[name] = len(self._node_order)
        self._node_order.append(name)

    def remove(self, name: str) -> Component:
        """Remove a component by name (used by fault injection)."""
        try:
            component = self._components.pop(name)
        except KeyError:
            raise NetlistError(f"no component named {name!r}") from None
        self._prepared = False
        return component

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __getitem__(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise NetlistError(f"no component named {name!r}") from None

    def __iter__(self) -> Iterator[Component]:
        return iter(self._components.values())

    def __len__(self) -> int:
        return len(self._components)

    @property
    def component_names(self) -> Tuple[str, ...]:
        return tuple(self._components)

    @property
    def node_names(self) -> Tuple[str, ...]:
        """Non-ground node names in index order."""
        return tuple(self._node_order)

    # -- factory helpers ---------------------------------------------------------

    def resistor(self, name: str, a: str, b: str, resistance: float) -> Resistor:
        return self.add(Resistor(name, a, b, resistance))  # type: ignore[return-value]

    def capacitor(self, name: str, a: str, b: str, capacitance: float, ic: Optional[float] = None) -> Capacitor:
        return self.add(Capacitor(name, a, b, capacitance, ic=ic))  # type: ignore[return-value]

    def inductor(self, name: str, a: str, b: str, inductance: float, ic: Optional[float] = None) -> Inductor:
        return self.add(Inductor(name, a, b, inductance, ic=ic))  # type: ignore[return-value]

    def switch(self, name: str, a: str, b: str, r_on: float = 1.0, r_off: float = 1e12, closed: bool = False) -> Switch:
        return self.add(Switch(name, a, b, r_on=r_on, r_off=r_off, closed=closed))  # type: ignore[return-value]

    def voltage_source(self, name: str, positive: str, negative: str, value: ValueSpec, ac_magnitude: float = 0.0) -> VoltageSource:
        return self.add(VoltageSource(name, positive, negative, value, ac_magnitude))  # type: ignore[return-value]

    def current_source(self, name: str, positive: str, negative: str, value: ValueSpec, ac_magnitude: float = 0.0) -> CurrentSource:
        return self.add(CurrentSource(name, positive, negative, value, ac_magnitude))  # type: ignore[return-value]

    def vccs(self, name: str, out_p: str, out_n: str, ctrl_p: str, ctrl_n: str, gm: float) -> VCCS:
        return self.add(VCCS(name, out_p, out_n, ctrl_p, ctrl_n, gm))  # type: ignore[return-value]

    def vcvs(self, name: str, out_p: str, out_n: str, ctrl_p: str, ctrl_n: str, mu: float) -> VCVS:
        return self.add(VCVS(name, out_p, out_n, ctrl_p, ctrl_n, mu))  # type: ignore[return-value]

    def nonlinear_vccs(
        self,
        name: str,
        out_p: str,
        out_n: str,
        ctrl_p: str,
        ctrl_n: str,
        func: Callable[[float], float],
        dfunc: Optional[Callable[[float], float]] = None,
        pair: Optional[Callable[[float], Tuple[float, float]]] = None,
        vector_pair: Optional[Callable[..., Tuple[np.ndarray, np.ndarray]]] = None,
        vector_params: Tuple[float, ...] = (),
    ) -> NonlinearVCCS:
        return self.add(
            NonlinearVCCS(
                name, out_p, out_n, ctrl_p, ctrl_n, func, dfunc, pair=pair,
                vector_pair=vector_pair, vector_params=vector_params,
            )
        )  # type: ignore[return-value]

    def diode(self, name: str, anode: str, cathode: str, i_sat: float = DEFAULT_IS, n: float = DEFAULT_N) -> Diode:
        return self.add(Diode(name, anode, cathode, i_sat=i_sat, n=n))  # type: ignore[return-value]

    def mosfet(self, name: str, d: str, g: str, s: str, b: str, params: MosfetParams) -> Mosfet:
        return self.add(Mosfet(name, d, g, s, b, params))  # type: ignore[return-value]

    def rlc_ladder(
        self,
        prefix: str,
        input_node: str,
        output_node: str,
        n_segments: int,
        l_segment: float,
        r_segment: float,
        c_segment: float,
        ground: str = "0",
    ) -> List[str]:
        """Chain ``n_segments`` series R-L cells between two nodes.

        The building block of distributed (transmission-line) netlists:
        segment ``k`` is an inductor ``{prefix}L{k}`` in series with a
        resistor ``{prefix}R{k}``, and every internal junction gets a
        shunt capacitor ``{prefix}C{k}`` of ``c_segment`` to
        ``ground``.  With N segments the ladder adds ``2N - 1``
        internal nodes and ``N`` inductor branches — the first netlist
        family in this library whose MNA system grows into sparse-
        backend territory (see :mod:`~repro.circuits.backend`).

        Returns the junction node names from ``input_node`` to
        ``output_node`` inclusive (the shunt-capacitor taps).
        """
        if n_segments < 1:
            raise NetlistError("rlc_ladder needs at least one segment")
        junctions = [input_node]
        node = input_node
        for k in range(1, n_segments + 1):
            mid = f"{prefix}m{k}"
            nxt = output_node if k == n_segments else f"{prefix}n{k}"
            self.inductor(f"{prefix}L{k}", node, mid, l_segment)
            self.resistor(f"{prefix}R{k}", mid, nxt, r_segment)
            if k < n_segments:
                self.capacitor(f"{prefix}C{k}", nxt, ground, c_segment)
            junctions.append(nxt)
            node = nxt
        return junctions

    def coil_mesh(
        self,
        prefix: str,
        nx: int,
        ny: int,
        l_segment: float,
        r_segment: float,
        c_node: float,
        ground: str = "0",
    ) -> List[List[str]]:
        """2-D grid of series L-R coil segments with shunt-C nodes.

        The two-dimensional generalization of :meth:`rlc_ladder`: grid
        node ``(i, j)`` is ``{prefix}n{i}_{j}``, every horizontal and
        vertical neighbor pair is joined by an inductor
        (``{prefix}Lh{i}_{j}`` / ``Lv``) in series with a resistor
        (``Rh``/``Rv``) through a mid junction, and every grid node
        carries a shunt capacitor ``{prefix}C{i}_{j}`` of ``c_node``
        to ``ground``.  With ``E = nx*(ny-1) + ny*(nx-1)`` edges the
        mesh contributes ``nx*ny + 2E`` MNA unknowns (grid nodes, mid
        junctions, inductor branches) — roughly ``5 * nx * ny`` — so a
        100x100 grid lands at ~50k unknowns: the 10k–100k territory
        the Krylov backend exists for.

        Returns the grid node names as ``nx`` rows of ``ny`` names.
        """
        if nx < 1 or ny < 1:
            raise NetlistError("coil_mesh needs nx >= 1 and ny >= 1")
        if nx * ny < 2:
            raise NetlistError("coil_mesh needs at least two grid nodes")
        grid = [
            [f"{prefix}n{i}_{j}" for j in range(ny)] for i in range(nx)
        ]
        for i in range(nx):
            for j in range(ny):
                node = grid[i][j]
                self.capacitor(f"{prefix}C{i}_{j}", node, ground, c_node)
                if j + 1 < ny:
                    mid = f"{prefix}hm{i}_{j}"
                    self.inductor(f"{prefix}Lh{i}_{j}", node, mid, l_segment)
                    self.resistor(f"{prefix}Rh{i}_{j}", mid, grid[i][j + 1], r_segment)
                if i + 1 < nx:
                    mid = f"{prefix}vm{i}_{j}"
                    self.inductor(f"{prefix}Lv{i}_{j}", node, mid, l_segment)
                    self.resistor(f"{prefix}Rv{i}_{j}", mid, grid[i + 1][j], r_segment)
        return grid

    # -- preparation -------------------------------------------------------------

    def prepare(self) -> int:
        """Assign node and branch indices; return the system size.

        Idempotent; called automatically by the analyses.
        """
        if self._prepared:
            return self.size
        if not self._components:
            raise NetlistError("circuit has no components")
        n_nodes = len(self._node_order)
        branch_start = n_nodes
        for component in self._components.values():
            indices = [self.node_index(node) for node in component.nodes]
            component.assign_indices(indices, branch_start)
            branch_start += component.n_branches
        self._n_branches = branch_start - n_nodes
        self._prepared = True
        return self.size

    def node_index(self, name: str) -> int:
        """MNA index for a node name (ground -> -1)."""
        if name in GROUND_NAMES:
            return GROUND
        try:
            return self._node_index[name]
        except KeyError:
            raise NetlistError(f"unknown node {name!r}") from None

    @property
    def n_nodes(self) -> int:
        return len(self._node_order)

    @property
    def n_branches(self) -> int:
        self.prepare()
        return self._n_branches

    @property
    def size(self) -> int:
        """Total number of MNA unknowns."""
        return self.n_nodes + self._n_branches

    def has_nonlinear(self) -> bool:
        return any(c.is_nonlinear() for c in self._components.values())

    def partition_components(self) -> Tuple[List[Component], List[Component]]:
        """Split components for incremental transient assembly.

        Returns ``(split, full)``: *split* components are linear and
        honour the static/dynamic stamp contract, so their matrix
        entries can be assembled once per run; *full* components
        (nonlinear devices, or subclasses that never opted into the
        split) must be restamped at every Newton iteration.

        The split flag is deliberately **not** inherited: a subclass
        may override :meth:`~Component.stamp` with behaviour the
        parent's static/dynamic halves no longer describe, so only
        classes that declare ``supports_stamp_split`` in their own
        body are trusted.  Everything else takes the always-correct
        full-restamp path.
        """
        split: List[Component] = []
        full: List[Component] = []
        for component in self._components.values():
            declared = type(component).__dict__.get("supports_stamp_split", False)
            if declared and not component.is_nonlinear():
                split.append(component)
            else:
                full.append(component)
        return split, full

    # -- solution access helpers ---------------------------------------------------

    def voltage(self, x: np.ndarray, node: str) -> float:
        """Node voltage from a solution vector."""
        idx = self.node_index(node)
        return 0.0 if idx < 0 else float(x[idx])

    def differential(self, x: np.ndarray, node_p: str, node_n: str) -> float:
        return self.voltage(x, node_p) - self.voltage(x, node_n)
