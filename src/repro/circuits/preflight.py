"""Preflight netlist lint: structural diagnostics before any solve.

``check_netlist()`` inspects a prepared :class:`~repro.circuits.
netlist.Circuit` — and optionally the transient options about to run
against it — and returns structured :class:`Diagnostic` records for
the classic silent-failure topologies:

* **Dangling nodes** — a node wired to fewer than two component
  terminals has no defined current balance.
* **Floating islands** — connected groups of nodes with no DC
  conduction path to ground; solvable only through ``gmin``, so every
  voltage in the island is an artifact of the regularization.
* **Zero rows / columns** — unknowns whose matrix row or column is
  structurally empty (or stamped entirely with zeros) in a ``gmin=0``
  probe assembly: the MNA system is singular before numerics even
  start.
* **Voltage-source / inductor loops** — cycles of voltage-defined
  branches overdetermine KVL (V loops) or leave the DC loop current
  indeterminate (L loops).
* **Parameter spread** — stamped conductance magnitudes spanning more
  than ~12 decades forecast an ill-conditioned system regardless of
  topology.
* **Breakpoint sanity** — user breakpoints that are non-finite or
  outside ``(0, t_stop)`` are silently dropped by the step controller;
  preflight names them.

The probe assembly stamps into a throwaway
:class:`~repro.circuits.component.TripletSystem` and never touches
engine caches, so linting is side-effect free.  Engines wire it behind
``preflight="warn" | "raise" | "off"``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import ConfigurationError, PreflightError
from .component import StampContext, TripletSystem
from .controlled import VCCS, VCVS, NonlinearVCCS
from .elements import Capacitor, Inductor
from .sources import CurrentSource, VoltageSource
from .stepcontrol import collect_breakpoints

__all__ = [
    "Diagnostic",
    "PreflightWarning",
    "check_netlist",
    "apply_preflight",
    "PREFLIGHT_MODES",
]

PREFLIGHT_MODES = ("off", "warn", "raise")

#: Stamped-magnitude ratio above which the conditioning heuristic fires.
SPREAD_LIMIT = 1e12


class PreflightWarning(UserWarning):
    """Emitted (under ``preflight="warn"``) for each lint finding."""


@dataclass(frozen=True)
class Diagnostic:
    """One structured preflight finding.

    ``severity`` is ``"error"`` for topologies that make the system
    singular or overdetermined (these abort under ``preflight="raise"``)
    and ``"warning"`` for degradations the solver survives through
    regularization (gmin-held islands, extreme spreads, dropped
    breakpoints).
    """

    severity: str
    code: str
    nodes: Tuple[str, ...]
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.severity}] {self.code}: {self.message}"


class _UnionFind:
    """Tiny DSU over node indices (ground = -1 is a regular member)."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}

    def find(self, a: int) -> int:
        parent = self._parent
        root = parent.setdefault(a, a)
        while parent[root] != root:
            root = parent[root]
        while parent[a] != root:
            parent[a], a = root, parent[a]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge; returns False when a and b were already connected."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[rb] = ra
        return True


def _conduction_pairs(component, transient: bool) -> List[Tuple[int, int]]:
    """Terminal pairs through which DC (or companion) current can flow."""
    n = component._n
    if isinstance(component, (CurrentSource, VCCS, NonlinearVCCS)):
        return []
    if isinstance(component, Capacitor):
        # Open at DC; a finite companion conductance in transient/AC.
        return [(n[0], n[1])] if transient else []
    if isinstance(component, VCVS):
        return [(n[0], n[1])]
    if len(n) >= 2 and isinstance(
        component, (VoltageSource, Inductor)
    ):
        return [(n[0], n[1])]
    # Unknown/behavioural component types: assume every terminal pair
    # conducts.  Errs toward fewer false "floating" findings.
    return [(a, b) for i, a in enumerate(n) for b in n[i + 1 :]]


def _unknown_label(index: int, circuit, branch_owner: Dict[int, str]) -> str:
    names = circuit.node_names
    if index < len(names):
        return names[index]
    owner = branch_owner.get(index)
    return f"branch[{index}]" + (f" ({owner})" if owner else "")


def check_netlist(circuit, options=None, analysis: str = "tran") -> List[Diagnostic]:
    """Lint a circuit; returns structured diagnostics (possibly empty).

    ``options`` may be a :class:`~repro.circuits.transient.
    TransientOptions` (enables breakpoint checks and sets the probe
    step size); ``analysis`` is ``"tran"``, ``"ac"`` or ``"dc"`` and
    decides whether reactive elements count as conducting.
    """
    circuit.prepare()
    diags: List[Diagnostic] = []
    n_nodes = circuit.n_nodes
    size = circuit.size
    names = circuit.node_names
    transient = analysis in ("tran", "ac")

    branch_owner: Dict[int, str] = {}
    for component in circuit:
        for b in component._b:
            branch_owner[b] = component.name

    # -- connection counting / dangling nodes ------------------------------
    touch = np.zeros(n_nodes, dtype=int)
    for component in circuit:
        for idx in component._n:
            if idx >= 0:
                touch[idx] += 1
    for idx in np.flatnonzero(touch < 2):
        diags.append(
            Diagnostic(
                "warning",
                "dangling_node",
                (names[idx],),
                f"node {names[idx]!r} is wired to "
                f"{int(touch[idx])} terminal(s); its KCL row is "
                "under-determined",
            )
        )

    # -- DC-path-to-ground islands -----------------------------------------
    dsu = _UnionFind()
    dsu.find(-1)
    for idx in range(n_nodes):
        dsu.find(idx)
    for component in circuit:
        for a, b in _conduction_pairs(component, transient=transient):
            dsu.union(a, b)
    ground_root = dsu.find(-1)
    islands: Dict[int, List[str]] = {}
    for idx in range(n_nodes):
        root = dsu.find(idx)
        if root != ground_root:
            islands.setdefault(root, []).append(names[idx])
    for members in islands.values():
        diags.append(
            Diagnostic(
                "warning",
                "floating_island",
                tuple(members),
                "node(s) " + ", ".join(repr(m) for m in members)
                + " have no conduction path to ground"
                + ("" if transient else " at DC")
                + "; their voltages are held only by gmin",
            )
        )

    # -- voltage-defined loops ---------------------------------------------
    loop_dsu = _UnionFind()
    for component in circuit:
        if isinstance(component, (VoltageSource, VCVS)):
            a, b = component._n[0], component._n[1]
            if not loop_dsu.union(a, b):
                diags.append(
                    Diagnostic(
                        "error",
                        "vsource_loop",
                        tuple(
                            _unknown_label(i, circuit, branch_owner)
                            for i in (a, b)
                            if i >= 0
                        ),
                        f"voltage source {component.name!r} closes a loop "
                        "of voltage-defined branches; KVL is "
                        "overdetermined and the MNA system singular",
                    )
                )
    for component in circuit:
        if isinstance(component, Inductor):
            a, b = component._n[0], component._n[1]
            if not loop_dsu.union(a, b):
                diags.append(
                    Diagnostic(
                        "warning",
                        "inductor_loop",
                        tuple(
                            _unknown_label(i, circuit, branch_owner)
                            for i in (a, b)
                            if i >= 0
                        ),
                        f"inductor {component.name!r} closes a loop of "
                        "voltage-defined branches; the DC loop current "
                        "is indeterminate",
                    )
                )

    # -- gmin=0 probe assembly: zero rows/columns, parameter spread --------
    try:
        tri = TripletSystem(size)
        x0 = np.zeros(size)
        states = {}
        dt = None
        if transient:
            dt = getattr(options, "dt", None) or 1e-9
            for component in circuit:
                state = component.init_state(x0)
                if state is not None:
                    states[component.name] = state
        ctx = StampContext(
            system=tri,
            x=x0,
            time=0.0,
            dt=dt,
            method="trap",
            gmin=0.0,
            states=states,
        )
        for component in circuit:
            component.stamp(ctx)
    except Exception as exc:  # pragma: no cover - defensive
        diags.append(
            Diagnostic(
                "warning",
                "probe_failed",
                (),
                f"probe assembly failed during lint: {exc}",
            )
        )
    else:
        rows = np.asarray(tri.rows, dtype=np.intp)
        cols = np.asarray(tri.cols, dtype=np.intp)
        vals = np.abs(np.asarray(tri.vals, dtype=float))
        row_mag = np.zeros(size)
        col_mag = np.zeros(size)
        if rows.size:
            np.maximum.at(row_mag, rows, vals)
            np.maximum.at(col_mag, cols, vals)
        for axis, mag in (("row", row_mag), ("col", col_mag)):
            for idx in np.flatnonzero(mag == 0.0):
                idx = int(idx)
                label = _unknown_label(idx, circuit, branch_owner)
                if idx < n_nodes:
                    # gmin regularizes empty *node* rows/diagonals;
                    # flag, but as a survivable degradation.
                    severity, code = "warning", f"zero_{axis}"
                else:
                    # Branch equations get no gmin: structurally fatal.
                    severity, code = "error", f"zero_{axis}"
                diags.append(
                    Diagnostic(
                        severity,
                        code,
                        (label,),
                        f"unknown {label!r} has an all-zero matrix "
                        f"{axis} in a gmin=0 probe assembly; the "
                        "system is singular without regularization",
                    )
                )
        nonzero = vals[vals > 0.0]
        if nonzero.size:
            spread = float(nonzero.max() / nonzero.min())
            if spread > SPREAD_LIMIT:
                diags.append(
                    Diagnostic(
                        "warning",
                        "parameter_spread",
                        (),
                        f"stamped magnitudes span a {spread:.2e} ratio "
                        f"(> {SPREAD_LIMIT:.0e}); expect an "
                        "ill-conditioned system and noisy waveforms",
                    )
                )

    # -- breakpoint sanity --------------------------------------------------
    if options is not None and transient:
        t_stop = getattr(options, "t_stop", None)
        extra = getattr(options, "breakpoints", None) or ()
        if t_stop is not None:
            for t in extra:
                t = float(t)
                if not np.isfinite(t) or t <= 0.0 or t >= t_stop:
                    diags.append(
                        Diagnostic(
                            "warning",
                            "breakpoint",
                            (),
                            f"breakpoint {t!r} is outside (0, "
                            f"{t_stop}) and will be silently dropped "
                            "by the step controller",
                        )
                    )
            try:
                collect_breakpoints(
                    circuit,
                    t_stop,
                    extra=[t for t in extra if np.isfinite(t)],
                    sources=getattr(options, "breakpoint_sources", None) or (),
                )
            except Exception as exc:  # pragma: no cover - defensive
                diags.append(
                    Diagnostic(
                        "warning",
                        "breakpoint",
                        (),
                        f"breakpoint collection failed: {exc}",
                    )
                )

    return diags


def apply_preflight(
    circuit, mode: str, options=None, analysis: str = "tran"
) -> List[Diagnostic]:
    """Run the lint and act on ``mode``; returns the diagnostics.

    ``"off"`` skips the lint entirely; ``"warn"`` emits one
    :class:`PreflightWarning` per finding; ``"raise"`` additionally
    raises :class:`~repro.errors.PreflightError` when any finding has
    ``severity == "error"``.
    """
    if mode not in PREFLIGHT_MODES:
        raise ConfigurationError(
            f"preflight must be one of {PREFLIGHT_MODES}, got {mode!r}"
        )
    if mode == "off":
        return []
    diags = check_netlist(circuit, options=options, analysis=analysis)
    for diag in diags:
        warnings.warn(str(diag), PreflightWarning, stacklevel=3)
    if mode == "raise":
        errors = [d for d in diags if d.severity == "error"]
        if errors:
            raise PreflightError(
                "preflight lint found "
                f"{len(errors)} error(s): "
                + "; ".join(d.message for d in errors),
                diagnostics=diags,
            )
    return diags
