"""DC operating point and DC sweep analyses.

The Newton solver uses update damping plus two homotopy fallbacks
(gmin stepping, then source stepping), which is enough for every
circuit in this library including the floating-supply output-stage
sweeps of Fig 17/18.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..campaigns.runner import run_chain
from ..errors import ConvergenceError
from .backend import MatrixBackend, SparseBackend, resolve_backend
from .component import MNASystem, StampContext, TripletSystem
from .linsolve import damp_voltage_delta, solve_dense
from .netlist import Circuit
from .sources import CurrentSource, VoltageSource

__all__ = [
    "NewtonOptions",
    "OperatingPoint",
    "continuation_ladder",
    "solve_dc",
    "dc_sweep",
    "SweepResult",
]


@dataclass
class NewtonOptions:
    """Tuning knobs for the Newton solve."""

    max_iterations: int = 200
    abstol_v: float = 1e-9
    reltol: float = 1e-6
    #: Largest per-iteration change applied to any unknown (damping).
    max_step: float = 0.5
    gmin: float = 1e-12
    #: Sequence of gmin values for gmin stepping (largest first).
    gmin_steps: Sequence[float] = (1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 1e-12)
    #: Number of source-stepping points.
    source_steps: int = 20
    #: Test-only deterministic fault injection for the transient
    #: engines: ``fail_hook(time, phase, circuit) -> bool`` is
    #: consulted before each transient Newton step (``phase="step"``)
    #: and each rescue-ladder stage (``phase="rescue"``); returning
    #: True makes that solve fail as if Newton diverged.  The hook
    #: must be picklable (module-level) for process campaigns.  The
    #: DC solver ignores it.
    fail_hook: Optional[Callable[[float, str, object], bool]] = None


@dataclass
class OperatingPoint:
    """Converged DC solution with name-based access."""

    circuit: Circuit
    x: np.ndarray
    iterations: int

    def voltage(self, node: str) -> float:
        return self.circuit.voltage(self.x, node)

    def differential(self, node_p: str, node_n: str) -> float:
        return self.circuit.differential(self.x, node_p, node_n)

    def branch_current(self, component_name: str) -> float:
        """Branch current of a voltage source / inductor / VCVS."""
        component = self.circuit[component_name]
        branches = component.branch_indices
        if not branches:
            raise ConvergenceError(
                f"{component_name} has no branch current; "
                "only voltage-defined components do"
            )
        return float(self.x[branches[0]])

    def voltages(self) -> Dict[str, float]:
        return {node: self.voltage(node) for node in self.circuit.node_names}


def _stamp_system(circuit: Circuit, system, x: np.ndarray, gmin: float, source_scale: float):
    """Stamp the whole netlist into any system (dense or triplet).

    The single home of the DC stamping sequence, so the dense and
    sparse Newton paths cannot drift apart: every component's full
    stamp, then the global gmin from every node to ground that keeps
    floating nets solvable.
    """
    ctx = StampContext(system=system, x=x, gmin=gmin, source_scale=source_scale)
    for component in circuit:
        component.stamp(ctx)
    for i in range(circuit.n_nodes):
        system.add_G(i, i, gmin)
    return system


def _assemble(circuit: Circuit, x: np.ndarray, gmin: float, source_scale: float) -> MNASystem:
    return _stamp_system(circuit, MNASystem(circuit.size), x, gmin, source_scale)


def _solve_sparse(
    circuit: Circuit,
    x: np.ndarray,
    gmin: float,
    source_scale: float,
    backend: MatrixBackend,
) -> np.ndarray:
    """One sparse linearized solve: triplet assembly, CSR, factor.

    The DC Newton restamps every component per iteration anyway, so
    the sparse path simply finalizes each iteration's triplet stream
    into a fresh CSR factorization — O(nnz)-ish for the near-banded
    distributed netlists this backend exists for, and far from the
    transient hot loop where factorization reuse matters.  With the
    Krylov backend this refactorization disappears on its own: each
    iteration's ``factor`` hands back a solver riding the backend's
    stale LU, so only the first iteration (and iteration-count-
    triggered refreshes) pays a factorization — the Jacobians of a
    converging Newton sequence are ideal stale-preconditioner fodder.
    """
    tri = _stamp_system(
        circuit, TripletSystem(circuit.size), x, gmin, source_scale
    )
    matrix = SparseBackend.csr_from_coo(
        np.asarray(tri.rows, dtype=np.intp),
        np.asarray(tri.cols, dtype=np.intp),
        tri.values(),
        circuit.size,
    )
    return backend.factor(matrix).solve(tri.rhs)


def _newton(
    circuit: Circuit,
    x0: np.ndarray,
    options: NewtonOptions,
    gmin: float,
    source_scale: float,
    backend: MatrixBackend,
) -> Tuple[np.ndarray, int]:
    """One Newton solve; returns ``(solution, iterations_taken)``."""
    x = x0.copy()

    def linearized_solve(x_at: np.ndarray) -> np.ndarray:
        if backend.is_dense:
            system = _assemble(circuit, x_at, gmin, source_scale)
            return solve_dense(system.G, system.rhs)
        return _solve_sparse(circuit, x_at, gmin, source_scale, backend)

    if not circuit.has_nonlinear():
        return linearized_solve(x), 1
    n_nodes = circuit.n_nodes
    last_delta = np.inf
    for iteration in range(options.max_iterations):
        x_new = linearized_solve(x)
        # Damping applies to node *voltages* only; branch currents are
        # linear consequences of the voltages and may legitimately move
        # by large amounts in one iteration.
        delta, last_delta = damp_voltage_delta(
            x_new - x, n_nodes, options.max_step
        )
        x = x + delta
        tol = options.abstol_v + options.reltol * float(np.max(np.abs(x[:n_nodes])))
        if last_delta < tol:
            return x, iteration + 1
    raise ConvergenceError(
        "Newton iteration did not converge",
        iterations=options.max_iterations,
        residual=last_delta,
    )


def continuation_ladder(
    solve: Callable[[float, np.ndarray], Tuple[np.ndarray, int]],
    stages: Sequence[float],
    x0: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """Warm-started homotopy walk along a stage ladder.

    ``solve(stage, x_warm)`` performs one Newton solve of the
    ``stage``-parameterized system from the warm start ``x_warm`` and
    returns ``(solution, iterations_taken)``; each stage's solution
    seeds the next.  This is the shared skeleton of every homotopy in
    the library — DC gmin stepping (stages are descending gmin
    values), DC source stepping (stages are source scale factors),
    and the transient rescue ladder (stages are per-step extra-gmin
    rungs or residual-ramp waypoints).  Raises whatever ``solve``
    raises when a stage fails; the caller decides whether another
    ladder exists to fall back to.
    """
    x = x0
    total = 0
    for stage in stages:
        x, taken = solve(stage, x)
        total += taken
    return x, total


def solve_dc(
    circuit: Circuit,
    options: Optional[NewtonOptions] = None,
    x0: Optional[np.ndarray] = None,
    backend: object = "auto",
    preflight: str = "off",
) -> OperatingPoint:
    """Compute the DC operating point.

    Tries a plain Newton solve first, then gmin stepping, then source
    stepping.  Raises :class:`~repro.errors.ConvergenceError` if all
    fail.  ``backend`` selects the linear-algebra path (see
    :mod:`~repro.circuits.backend`): "auto" keeps small netlists on
    the historical dense solve and switches large ones to CSR + splu.
    ``preflight`` runs the structural netlist lint
    (:func:`~repro.circuits.preflight.check_netlist`) first:
    ``"warn"`` emits warnings, ``"raise"`` aborts on error-severity
    findings, ``"off"`` (default) skips it.
    """
    options = options or NewtonOptions()
    size = circuit.prepare()
    if preflight != "off":
        from .preflight import apply_preflight

        apply_preflight(circuit, preflight, analysis="dc")
    backend = resolve_backend(backend, size)
    x = x0.copy() if x0 is not None else np.zeros(circuit.size)

    try:
        solution, iterations = _newton(
            circuit, x, options, options.gmin, 1.0, backend
        )
        return OperatingPoint(circuit, solution, iterations=iterations)
    except ConvergenceError:
        pass

    # Gmin stepping: solve with huge gmin, tighten progressively.
    try:
        solution, total = continuation_ladder(
            lambda gmin, xw: _newton(circuit, xw, options, gmin, 1.0, backend),
            tuple(options.gmin_steps) + (options.gmin,),
            x.copy(),
        )
        return OperatingPoint(circuit, solution, iterations=total)
    except ConvergenceError:
        pass

    # Source stepping: ramp all independent sources from 0 to 100 %.
    solution, total = continuation_ladder(
        lambda scale, xw: _newton(circuit, xw, options, options.gmin, scale, backend),
        [k / options.source_steps for k in range(1, options.source_steps + 1)],
        np.zeros(circuit.size),
    )
    return OperatingPoint(circuit, solution, iterations=total)


@dataclass
class SweepResult:
    """Result of a DC sweep: swept values plus per-probe traces."""

    values: np.ndarray
    traces: Dict[str, np.ndarray]

    def trace(self, name: str) -> np.ndarray:
        return self.traces[name]


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: Sequence[float],
    probes: Dict[str, Callable[[OperatingPoint], float]],
    options: Optional[NewtonOptions] = None,
) -> SweepResult:
    """Sweep an independent source and record probe values.

    Each sweep point starts from the previous solution (continuation),
    which makes sweeps through device turn-on robust.

    Parameters
    ----------
    source_name:
        Name of a :class:`VoltageSource` or :class:`CurrentSource`.
    values:
        Sweep values applied to the source.
    probes:
        Mapping from output-trace name to a function of the operating
        point, e.g. ``{"i": lambda op: op.branch_current("Vsweep")}``.
    """
    source = circuit[source_name]
    if not isinstance(source, (VoltageSource, CurrentSource)):
        raise ConvergenceError(f"{source_name} is not an independent source")
    options = options or NewtonOptions()
    circuit.prepare()
    values_arr = np.asarray(list(values), dtype=float)
    original = source._func  # restored afterwards

    def solve_point(value, x_prev):
        """Campaign worker: previous solution warm-starts this point."""
        source.set_value(float(value))
        op = solve_dc(circuit, options=options, x0=x_prev)
        return {name: float(probe(op)) for name, probe in probes.items()}, op.x

    try:
        rows = run_chain(solve_point, values_arr)
    finally:
        source._func = original
    traces = {
        name: np.asarray([row[name] for row in rows]) for name in probes
    }
    return SweepResult(values=values_arr, traces=traces)
