r"""Pluggable integration methods for the transient engines.

Historically the integrator was two string literals: ``"trap"`` and
``"be"`` were compared all over the stack — in every companion
formula (:meth:`Capacitor.companion_conductance`), in the vectorized
coefficient builder (:class:`~repro.circuits.assembly._ReactiveSet`),
in the step controller's LTE order, and in both transient engines.
Adding a method meant touching every one of those sites, which is why
the reproduction was capped at second order.

This module extracts the integrator into one layer.  An
:class:`IntegrationMethod` describes everything the rest of the stack
needs to integrate ``i = C dv/dt`` / ``v = L di/dt`` companion models:

* the **leading coefficient** of the discretization — the part that
  lands in the system *matrix* (``geq = lead * C / dt``,
  ``req = lead * L / dt``) and therefore keys the per-step-size
  assembly/factorization cache ``(dt, method, order)``;
* the **history weights** — the part that lands in the *RHS* as the
  companion current, as a function of the committed state history
  (values, derivatives, and their times, newest first);
* the **required history depth**, **LTE order** and **error
  constant** per order, and the **startup policy** (which order is
  usable given how many committed points exist).

Companion model convention
--------------------------
Writing ``y`` for the element's natural state (capacitor voltage,
inductor current) and ``yd`` for its scaled derivative (capacitor
current ``C y'``, inductor voltage ``L y'``), every method here is a
rule

.. math::

    E\,y'(t_{n+1}) \approx \frac{\mathrm{lead}\cdot E}{dt}\, y_{n+1}
        + \sum_k w^v_k\,\frac{\mathrm{lead}\cdot E}{dt}\, y_{n-k}
        + \sum_k w^d_k\, yd_{n-k}

with ``E = C`` or ``L``.  The value weights ``wv`` are expressed in
units of the companion conductance (``geq``/``req``), so the
trapezoidal/backward-Euler weights are exactly the ``-geq*v - i`` /
``-geq*v`` companion formulas the seed engine stamped — the golden
fixed-grid results are reproduced bit-for-bit through this layer.

Variable-step BDF (fixed leading coefficient)
---------------------------------------------
The BDF members keep the *uniform-grid* leading coefficient (3/2 for
BDF2, 11/6 for BDF3) regardless of how non-uniform the committed
history is, and absorb the non-uniformity entirely into the history
weights: the uniform-grid formula needs values at ``t_{n+1} - k*dt``,
and where no committed point lands exactly there the value is read
off the Lagrange interpolant through the actual history points.
Because the matrix-side coefficient never depends on the history
spacing, a ``(dt, method, order)`` cache entry stays valid across
arbitrary step-size sequences — the per-``dt`` LRU is never thrashed
by history effects — while the RHS weights are recomputed per step
from the history times (a handful of scalar operations).  The
interpolation is exact on the polynomials the order demands, so the
composite formula keeps the method's order on non-uniform grids; on a
uniform grid the interpolation nodes coincide with the uniform
offsets and the classic BDF weights fall out exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SimulationError

__all__ = [
    "StepCoeffs",
    "IntegrationMethod",
    "Trapezoidal",
    "BackwardEuler",
    "BDF2",
    "Gear",
    "resolve_method",
    "KNOWN_METHODS",
]


class StepCoeffs:
    """Per-step companion coefficients handed to components.

    ``lead`` is the matrix-side coefficient (``geq = lead * C / dt``).
    ``wv0``/``wd0`` are the newest history point's value/derivative
    weights — the only ones a *one-step* method has, and the only ones
    the generic single-component stamp path (``stamp_dynamic`` /
    ``update_state`` on a scalar integrator state) can honour.
    Multistep coefficients set ``one_step=False``; components on the
    generic path refuse them loudly instead of silently dropping the
    deeper history (the vectorized assembly path carries it).
    """

    __slots__ = ("lead", "wv0", "wd0", "one_step")

    def __init__(self, lead: float, wv0: float, wd0: float, one_step: bool = True):
        self.lead = lead
        self.wv0 = wv0
        self.wd0 = wd0
        self.one_step = one_step

    def require_one_step(self, where: str) -> "StepCoeffs":
        if not self.one_step:
            raise SimulationError(
                f"{where}: multistep integration coefficients reached the "
                "generic one-step companion path; multistep methods need "
                "the vectorized reactive-state path"
            )
        return self


class IntegrationMethod:
    """Base class / protocol for integration methods.

    Subclasses define the class attributes and the two coefficient
    hooks; everything else (startup policy, depth bookkeeping) is
    shared.  ``min_order``/``max_order`` bound the *target* order an
    order controller may pick; the startup ramp below them is handled
    by :meth:`usable_order`, which clamps any target to what the
    available committed history supports.
    """

    #: Canonical name; the assembly cache key and ``stats()`` use it.
    name: str = ""
    min_order: int = 1
    max_order: int = 1

    # -- order / history bookkeeping ---------------------------------------

    def lte_order(self, order: int) -> int:
        """Local-truncation-error order ``p`` (LTE is ``O(dt^{p+1})``)."""
        raise NotImplementedError

    def error_constant(self, order: int) -> float:
        """Leading LTE constant ``C_{p+1}`` (diagnostic; the adaptive
        controller's step-doubling Richardson estimate does not need
        it, but order-control heuristics and tests do)."""
        raise NotImplementedError

    def history_depth(self, order: int) -> int:
        """Committed history points needed *beyond* the current state
        to run at ``order`` on an arbitrary non-uniform grid."""
        raise NotImplementedError

    def usable_order(self, order: int, points: int) -> int:
        """Startup policy: the order actually usable right now.

        ``points`` counts committed states including the current one
        (a fresh run has 1: the initial condition).  An order-``o``
        formula references ``o`` committed values, so the usable order
        is clamped to ``min(order, points)`` and into the method's
        supported range.
        """
        order = max(self.min_order, min(order, self.max_order))
        return max(1, min(order, points))

    @property
    def is_multistep(self) -> bool:
        """Whether any supported order needs history beyond one point."""
        return self.history_depth(self.max_order) > 1

    # -- coefficients -------------------------------------------------------

    def base_coeffs(self, order: int) -> StepCoeffs:
        """The dt-independent coefficient bundle for one order.

        Carries the leading coefficient (all the matrix side needs)
        plus the uniform-grid newest-point weights for the generic
        one-step companion path.
        """
        raise NotImplementedError

    def step_weights(
        self, dt: float, order: int, times: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """History weights ``(wv, wd)`` for one step of size ``dt``.

        ``times`` are the committed state times, newest first
        (``times[0]`` is the time the step departs from; the step
        lands on ``times[0] + dt``).  ``wv[k]`` weights the value
        history in units of ``geq``/``req``; ``wd[k]`` weights the
        derivative history dimensionlessly.  Both are plain float
        sequences with one entry per history point actually used (at
        most ``len(times)``) — scalar types keep the per-step weight
        computation off numpy's small-array overhead.
        """
        raise NotImplementedError


class _OneStep(IntegrationMethod):
    """Shared body of the classic one-step methods.

    The weights are spacing-independent, so :meth:`step_weights` is a
    constant — the whole per-``(dt, method)`` coefficient product can
    live in the assembly's cache entry, exactly as it always has.
    """

    _lead: float
    _wv0: float
    _wd0: float
    _lte: int
    _err_const: float

    def lte_order(self, order: int) -> int:
        return self._lte

    def error_constant(self, order: int) -> float:
        return self._err_const

    def history_depth(self, order: int) -> int:
        return 1

    def usable_order(self, order: int, points: int) -> int:
        return self.min_order  # fixed-order methods have no ramp

    def base_coeffs(self, order: int) -> StepCoeffs:
        return StepCoeffs(self._lead, self._wv0, self._wd0, one_step=True)

    def step_weights(self, dt, order, times):
        return (self._wv0,), (self._wd0,)


class Trapezoidal(_OneStep):
    """Second-order trapezoidal rule (the seed engine's default).

    ``y'_{n+1} = (2/dt)(y_{n+1} - y_n) - y'_n`` — A-stable but not
    L-stable: on the imaginary axis ``|R| = 1``, so residual ringing
    never damps, which is what caps its step size on quiet stiff
    tails.
    """

    name = "trap"
    min_order = max_order = 2
    _lead = 2.0
    _wv0 = -1.0
    _wd0 = -1.0
    _lte = 2
    _err_const = -1.0 / 12.0


class BackwardEuler(_OneStep):
    """First-order backward Euler (``"be"``): L-stable workhorse."""

    name = "be"
    min_order = max_order = 1
    _lead = 1.0
    _wv0 = -1.0
    _wd0 = 0.0
    _lte = 1
    _err_const = 0.5


#: Uniform-grid BDF tableaus, per order: leading coefficient and the
#: weights on y(t_{n+1} - k*dt), k = 1..order (all divided by dt).
_BDF_LEAD = {1: 1.0, 2: 1.5, 3: 11.0 / 6.0}
_BDF_PAST = {
    1: (-1.0,),
    2: (-2.0, 0.5),
    3: (-3.0, 1.5, -1.0 / 3.0),
}
#: Leading LTE constants C_{p+1} of the uniform BDF formulas.
_BDF_ERR_CONST = {1: 0.5, 2: -2.0 / 9.0, 3: -3.0 / 22.0}


def _lagrange_weights(tau: float, nodes: Sequence[float]) -> list:
    """Lagrange basis values at ``tau`` for the given nodes.

    Exact selection when ``tau`` coincides with a node (the numerator
    factor is exactly zero / the self-term cancels exactly), so on a
    uniform grid the classic BDF weights are recovered bit-for-bit.
    Pure scalar arithmetic: this sits on the per-step path of every
    multistep run, where small-array numpy overhead dominates.
    """
    n = len(nodes)
    L = [1.0] * n
    for i in range(n):
        li = 1.0
        ti = nodes[i]
        for j in range(n):
            if i != j:
                li *= (tau - nodes[j]) / (ti - nodes[j])
        L[i] = li
    return L


class Gear(IntegrationMethod):
    """Variable-order BDF (Gear) family, orders 1 through ``max_order``.

    Order 1 is backward Euler; order 2/3 are the BDF2/BDF3 formulas
    with a **fixed leading coefficient**: the uniform-grid value
    enters the matrix, and non-uniform history is handled by reading
    the formula's uniform-offset values off the Lagrange interpolant
    through the committed points (see the module docstring).  BDF1/2
    are A-stable (BDF2 L-stable), BDF3 is stiffly stable — strongly
    damping on the negative real axis, which is exactly what the
    supply-loss quiet tails want and trapezoidal cannot provide.
    """

    min_order = 1

    def __init__(self, max_order: int = 2, name: Optional[str] = None):
        if not 1 <= max_order <= 3:
            raise SimulationError(
                f"gear max_order must be 1..3, got {max_order}"
            )
        self.max_order = int(max_order)
        self.name = name if name is not None else "gear"

    def lte_order(self, order: int) -> int:
        return order

    def error_constant(self, order: int) -> float:
        return _BDF_ERR_CONST[order]

    def history_depth(self, order: int) -> int:
        # order committed values in the formula, plus one spare point
        # so the uniform-offset interpolation stays at the formula's
        # degree on non-uniform grids.
        return order + 1 if order > 1 else 1

    def base_coeffs(self, order: int) -> StepCoeffs:
        past = _BDF_PAST[order]
        lead = _BDF_LEAD[order]
        return StepCoeffs(
            lead, past[0] / lead, 0.0, one_step=(order == 1)
        )

    def step_weights(self, dt, order, times):
        npts = len(times)
        if npts < order:
            raise SimulationError(
                f"gear order {order} needs {order} committed points, "
                f"have {npts} (the engine's usable_order clamp was bypassed)"
            )
        past = _BDF_PAST[order]
        lead = _BDF_LEAD[order]
        if order == 1:
            return (past[0] / lead,), (0.0,)
        # Interpolation nodes: up to order+1 newest committed points.
        n_nodes = min(order + 1, npts)
        nodes = [float(t) for t in times[:n_nodes]]
        wv = [0.0] * n_nodes
        wv[0] = past[0]
        t0 = nodes[0]
        for k in range(2, order + 1):
            tau = t0 - (k - 1) * dt
            # times[0] is exactly t_{n+1} - dt (the step departs from
            # it), so only the k >= 2 offsets ever need interpolating.
            L = _lagrange_weights(tau, nodes)
            pk = past[k - 1]
            for i in range(n_nodes):
                wv[i] += pk * L[i]
        return tuple(w / lead for w in wv), (0.0,) * n_nodes


class BDF2(Gear):
    """Fixed second-order BDF (Gear at order 2, no order control)."""

    min_order = 2

    def __init__(self):
        super().__init__(max_order=2, name="bdf2")


#: Method registry: the spellings ``TransientOptions.method`` accepts.
KNOWN_METHODS = ("trap", "be", "bdf2", "gear")

_ONE_STEP = {"trap": Trapezoidal(), "be": BackwardEuler()}


def resolve_method(
    method: Union[str, IntegrationMethod, None],
    max_order: Optional[int] = None,
) -> IntegrationMethod:
    """An :class:`IntegrationMethod` instance for a name or instance.

    ``max_order`` applies to ``"gear"`` only (default 2; 3 opts into
    the stiffly-stable but not A-stable BDF3 tier).
    """
    if isinstance(method, IntegrationMethod):
        return method
    if method in _ONE_STEP:
        return _ONE_STEP[method]
    if method == "bdf2":
        return BDF2()
    if method == "gear":
        return Gear(max_order=2 if max_order is None else max_order)
    raise SimulationError(
        f"unknown method {method!r}; known: {', '.join(KNOWN_METHODS)}"
    )
