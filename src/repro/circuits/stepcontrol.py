"""Local-truncation-error step control for the transient engine.

The paper's headline transients are stiff-then-slow: a few hundred
fast carrier cycles of startup followed by long envelope settling
(Fig 16), or a supply-loss event followed by a slow amplitude decay
(Fig 17/18).  A fixed step sized for the fastest phase pays that cost
at every instant; :class:`StepController` lets the engine walk the
slow phases with steps orders of magnitude larger while bounding the
local truncation error (LTE) of every accepted step.

Design
------
* **LTE estimate by step doubling.**  Each candidate step of size
  ``dt`` is solved twice: once as a full step and once as two half
  steps.  For an integrator of order ``p`` (trapezoidal: 2, backward
  Euler: 1, BDF at its active order) the difference between the two
  results estimates the LTE of the half-step solution as
  ``|x_full - x_half| / (2^p - 1)`` (Richardson).  The half-step
  solution — the more accurate one — is what the engine keeps on
  acceptance.
* **Order control (variable-order Gear).**  When the integration
  method spans several orders and ``order_control`` is on, the
  controller also decides the *target order* of each candidate on the
  same step-doubling machinery: the per-order Richardson estimate at
  the order actually used drives accept/reject exactly as for a fixed
  method, a streak of comfortable accepts (ratio well under
  tolerance) raises the order, repeated rejections lower it, and a
  breakpoint crossing drops back to first order because the multistep
  history is meaningless across a discontinuity.  The *usable* order
  of a candidate is the target clamped by the committed history the
  engine actually has (the classic Gear startup ramp); per-order
  accepted/rejected counts are reported by :meth:`StepController.
  stats`.
* **Accept/reject with growth clamps.**  The error ratio (estimated
  LTE over tolerance) drives the classic controller
  ``dt_new = dt * safety * ratio^(-1/(p+1))``, clamped to at most
  ``max_growth`` per accepted step and halved-or-worse on rejection,
  and always confined to ``[dt_min, dt_max]``.
* **Quantized step sizes.**  Proposed steps snap *down* onto the grid
  ``dt_max / 2^k``.  The controller therefore revisits a handful of
  distinct step sizes over a whole run, which is what makes the
  per-``dt`` assembly/factorization cache of
  :class:`~repro.circuits.assembly.TransientAssembly` effective:
  halving a step lands exactly on another cached entry.
* **Breakpoint forcing.**  Source discontinuities (pulse edges, PWL
  corners, delayed sines — see :func:`~repro.circuits.sources.
  source_breakpoints`) and ``t_stop`` are hard step boundaries: a
  step is truncated so it *lands exactly on* the next breakpoint
  rather than integrating across it, and the step size restarts small
  on the far side where the LTE history is meaningless.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SimulationError
from .integration import IntegrationMethod, resolve_method

__all__ = [
    "Phase",
    "PhaseSchedule",
    "StepController",
    "collect_breakpoints",
    "stiffness_bins",
]

#: Relative slack when deciding that a step "reaches" a breakpoint.
_TIME_EPS = 1e-12

#: Order-raise policy: this many consecutive accepts, each with an
#: error ratio below the threshold, promote the target order one tier.
_ORDER_RAISE_ACCEPTS = 3
_ORDER_RAISE_RATIO = 0.25

#: Order-lower policy: this many consecutive rejections demote one tier
#: (the step size is already shrinking; a persistent rejection streak
#: says the high-order formula itself is misbehaving, e.g. BDF3 on an
#: oscillatory segment).
_ORDER_LOWER_REJECTS = 2


def collect_breakpoints(
    circuit,
    t_stop: float,
    extra: Iterable[float] = (),
    sources: Iterable[object] = (),
) -> Tuple[float, ...]:
    """Sorted, de-duplicated breakpoint times in ``(0, t_stop)``.

    Gathers stimulus discontinuities from every component exposing a
    ``breakpoints(t_stop)`` method (the independent sources), known
    event times from every object in ``sources`` exposing the same
    hook (the digital blocks: :class:`~repro.digital.events.
    EventScheduler` queues, :class:`~repro.digital.events.
    RecurringEvent` ticks, watchdog deadlines, POR release times —
    anything a mixed-signal scenario would otherwise hand-list), plus
    any caller-supplied ``extra`` times.
    """
    times: List[float] = []
    for component in circuit:
        generator = getattr(component, "breakpoints", None)
        if generator is not None:
            times.extend(generator(t_stop))
    for source in sources:
        generator = getattr(source, "breakpoints", None)
        if generator is None:
            raise SimulationError(
                f"breakpoint source {source!r} has no breakpoints(t_stop) hook"
            )
        times.extend(generator(t_stop))
    times.extend(extra)
    inside = sorted({float(t) for t in times if 0.0 < t < t_stop})
    return tuple(inside)


@dataclass(frozen=True)
class Phase:
    """One integration phase of a :class:`PhaseSchedule`.

    ``t_start`` is the phase's onset (the schedule's first phase must
    start at 0).  ``method`` is an integration-method name or instance
    — typically ``"trap"`` for carrier-resolved phases and ``"gear"``
    for decay/settle phases.  ``dt`` optionally suggests the working
    step size the controller should restart at on entering the phase
    (``None`` keeps whatever step the controller reached).
    ``max_order`` applies to ``"gear"`` only.  ``bootstrap`` asks the
    engine to synthesize a consistent multistep history at the phase
    boundary (:meth:`~repro.circuits.assembly.TransientAssembly.
    set_method` with a bootstrap spacing) so Gear phases entered
    mid-run start at full order instead of ramping.
    """

    t_start: float
    method: Union[str, IntegrationMethod] = "trap"
    dt: Optional[float] = None
    max_order: Optional[int] = None
    name: Optional[str] = None
    bootstrap: bool = True

    def resolved_method(self) -> IntegrationMethod:
        return resolve_method(self.method, max_order=self.max_order)

    def label(self) -> str:
        return self.name or self.resolved_method().name


class PhaseSchedule:
    """Partition of a transient run into per-phase integration setups.

    The paper's headline scenarios are stiff-then-slow: carrier-
    resolved stretches (startup kicks, fault edges) where trapezoidal
    at fine dt is the right tool, separated at stimulus breakpoints
    from long decay/settle stretches where a strongly damping Gear
    member at coarse dt strides through the quiet tail.  A schedule
    lists those stretches as :class:`Phase` entries; the adaptive
    engine forces exact step boundaries at every phase onset (they
    join the breakpoint list) and performs a live
    ``TransientAssembly.set_method`` switch — with controller rebind
    and history reset/bootstrap — each time a boundary is crossed.

    Phases must be sorted by ``t_start`` with the first at 0; times
    are absolute run times.
    """

    def __init__(self, phases: Sequence[Phase]):
        phases = tuple(phases)
        if not phases:
            raise SimulationError("PhaseSchedule needs at least one phase")
        if abs(phases[0].t_start) > _TIME_EPS:
            raise SimulationError(
                "the first phase must start at t=0, got "
                f"t_start={phases[0].t_start!r}"
            )
        for previous, current in zip(phases, phases[1:]):
            if current.t_start <= previous.t_start:
                raise SimulationError(
                    "phase onsets must be strictly increasing; "
                    f"{current.t_start!r} follows {previous.t_start!r}"
                )
        for phase in phases:
            phase.resolved_method()  # validate names/orders eagerly
            if phase.dt is not None and phase.dt <= 0:
                raise SimulationError("phase dt must be positive")
        self.phases = phases
        self._index = 0

    @classmethod
    def carrier_then_settle(
        cls,
        t_switch: float,
        carrier_dt: Optional[float] = None,
        settle_dt: Optional[float] = None,
        settle_method: Union[str, IntegrationMethod] = "gear",
        max_order: Optional[int] = None,
    ) -> "PhaseSchedule":
        """The canonical two-phase schedule: carrier-resolved trap
        until ``t_switch``, then a damped multistep settle phase."""
        if t_switch <= 0:
            raise SimulationError("t_switch must be positive")
        return cls(
            (
                Phase(0.0, "trap", dt=carrier_dt, name="carrier"),
                Phase(
                    t_switch,
                    settle_method,
                    dt=settle_dt,
                    max_order=max_order,
                    name="settle",
                ),
            )
        )

    @property
    def initial_phase(self) -> Phase:
        return self.phases[0]

    def boundaries(self) -> Tuple[float, ...]:
        """Interior phase onsets — forced step boundaries."""
        return tuple(p.t_start for p in self.phases[1:])

    def restart(self) -> Phase:
        """Reset the cursor to the first phase (run initialization)."""
        self._index = 0
        return self.phases[0]

    def phase_at(self, t: float) -> Phase:
        """The phase governing time ``t`` (stateless lookup)."""
        active = self.phases[0]
        for phase in self.phases[1:]:
            if t >= phase.t_start * (1.0 - _TIME_EPS):
                active = phase
            else:
                break
        return active

    def advance_to(self, t: float) -> Optional[Phase]:
        """Move the cursor to the phase governing ``t``.

        Returns the newly entered phase when ``t`` crossed one or more
        boundaries since the last call, ``None`` while the active
        phase is unchanged.  The engine calls this after every
        accepted step; onsets are exact step boundaries, so the cursor
        advances exactly at the landing step.
        """
        moved = None
        while self._index + 1 < len(self.phases):
            onset = self.phases[self._index + 1].t_start
            if t >= onset * (1.0 - _TIME_EPS):
                self._index += 1
                moved = self.phases[self._index]
            else:
                break
        return moved


def stiffness_bins(
    ratios: Sequence[float],
    n_bins: int,
) -> List[np.ndarray]:
    """Cluster sample indices into quantile bins by stiffness ratio.

    ``ratios`` are per-sample first-step LTE ratios (see
    :meth:`StepController.error_ratio_samples` — larger means stiffer:
    the sample demands a smaller step to hold tolerance).  The samples
    are ranked by ratio and split into ``n_bins`` contiguous quantile
    groups, benign first, stiffest last.  The sharded campaign layer
    cuts its sub-batches *within* these bins so an adaptive shard's
    worst-sample grid answers to peers of similar stiffness instead of
    one outlier dragging a batch of benign samples to its dt.

    Deterministic by construction: ties rank by sample index (stable
    sort), each bin's indices come back ascending, and non-finite
    ratios (a failed probe step — maximally stiff) sort last.  Bins
    that would be empty (``n_bins > len(ratios)``) are dropped, so the
    returned list always partitions ``range(len(ratios))`` exactly.
    """
    ratios = np.asarray(ratios, dtype=float)
    if n_bins < 1:
        raise SimulationError("n_bins must be >= 1")
    n = len(ratios)
    if n == 0:
        return []
    # NaN/inf mark probe failures: rank them stiffest, not undefined.
    keys = np.where(np.isfinite(ratios), ratios, np.inf)
    order = np.argsort(keys, kind="stable")
    bins = [
        np.sort(chunk)
        for chunk in np.array_split(order, min(n_bins, n))
        if chunk.size
    ]
    return bins


class StepController:
    """Accept/reject step-size controller with breakpoint forcing.

    The engine drives it in a propose/attempt/report loop::

        while not controller.finished:
            t_target, dt = controller.propose()
            ...solve full step and two half steps to t_target...
            ratio = controller.error_ratio(x_full, x_half, n_nodes)
            if ratio <= 1.0:
                controller.accept(t_target, dt, ratio)
            else:
                controller.reject(ratio)

    Newton convergence failures count as rejections too
    (:meth:`reject_nonconvergence`), which is how the controller walks
    the engine through sharp nonlinear transitions a fixed step would
    simply fail on.
    """

    def __init__(
        self,
        t_stop: float,
        dt_initial: float,
        dt_min: float,
        dt_max: float,
        method: Union[str, IntegrationMethod] = "trap",
        reltol: float = 1e-3,
        abstol: float = 1e-6,
        safety: float = 0.9,
        max_growth: float = 2.0,
        breakpoints: Sequence[float] = (),
        order_control: bool = False,
    ):
        if not 0.0 < dt_min <= dt_max:
            raise SimulationError("require 0 < dt_min <= dt_max")
        if dt_max >= t_stop:
            dt_max = t_stop / 2.0
        if not dt_min <= dt_initial <= dt_max:
            dt_initial = min(max(dt_initial, dt_min), dt_max)
        if reltol <= 0.0 or abstol <= 0.0:
            raise SimulationError("lte tolerances must be positive")
        if not 0.0 < safety <= 1.0:
            raise SimulationError("safety must be in (0, 1]")
        if max_growth <= 1.0:
            raise SimulationError("max_growth must exceed 1")

        self.t_stop = float(t_stop)
        self.dt_max = float(dt_max)
        # Quantized grid: dt_max / 2^k down to (just below) dt_min.
        self._max_level = max(0, int(math.ceil(math.log2(dt_max / dt_min))))
        self.dt_min = dt_max / 2.0 ** self._max_level
        self.method = resolve_method(method)
        #: Order decisions only exist when the method spans several.
        self.order_control = (
            bool(order_control) and self.method.max_order > self.method.min_order
        )
        #: Target integration order; candidates may run below it while
        #: the committed history ramps up (see candidate_order).
        self.order = (
            self.method.min_order if self.order_control else self.method.max_order
        )
        self._order_used = self.order
        self._set_lte_order(self.order)
        self.reltol = float(reltol)
        self.abstol = float(abstol)
        self.safety = float(safety)
        self.max_growth = float(max_growth)

        self._breakpoints = list(breakpoints) + [self.t_stop]
        self._bp_index = 0
        self._landing_on_bp = False

        self.t = 0.0
        self.dt = self._quantize(dt_initial)
        self._dt_after_reject = None
        self._rejects_at_floor = 0

        # Diagnostics.
        self.accepted = 0
        self.rejected = 0
        self.breakpoints_hit = 0
        self.min_dt_taken = math.inf
        self.max_dt_taken = 0.0
        self.accepted_by_order: Dict[int, int] = {}
        self.rejected_by_order: Dict[int, int] = {}
        self.order_raises = 0
        self.order_lowers = 0
        #: Whether the last accepted step landed on (and consumed) a
        #: breakpoint — engines reset multistep history when it did.
        self.crossed_breakpoint = False
        self._good_accepts = 0
        self._reject_streak = 0

    # -- internals ------------------------------------------------------------

    def _set_lte_order(self, order: int) -> None:
        p = self.method.lte_order(order)
        self._err_div = float(2 ** p - 1)
        self._exponent = 1.0 / (p + 1)

    def candidate_order(self, history_points: int = 1) -> int:
        """The order the next candidate step should integrate at.

        The target order is clamped by the committed history actually
        available (``history_points`` counts committed states
        including the current one) — the classic Gear startup ramp.
        The returned order is also the one the subsequent
        :meth:`error_ratio` / :meth:`accept` / :meth:`reject` calls
        attribute the candidate to.
        """
        effective = self.method.usable_order(self.order, history_points)
        if effective != self._order_used:
            self._order_used = effective
            self._set_lte_order(effective)
        return effective

    def rebind_method(
        self,
        method: Union[str, IntegrationMethod],
        dt: Optional[float] = None,
        order: Optional[int] = None,
        order_control: Optional[bool] = None,
    ) -> None:
        """Point the controller at a new integration method mid-run.

        The phase-switching engine calls this when a
        :class:`PhaseSchedule` boundary is crossed: the LTE order, the
        order-control target, and the accept/reject streak state all
        belong to the outgoing method and must not leak into the new
        phase.  ``dt`` restarts the working step size (quantized onto
        the grid); ``order`` seeds the target order — pass the
        method's full order when the history ring was bootstrapped at
        the boundary, so an order-controlled Gear phase does not
        re-climb from first order.
        """
        self.method = resolve_method(method)
        if order_control is None:
            order_control = self.method.max_order > self.method.min_order
        self.order_control = (
            bool(order_control)
            and self.method.max_order > self.method.min_order
        )
        if order is None:
            order = (
                self.method.min_order
                if self.order_control
                else self.method.max_order
            )
        self.order = max(
            self.method.min_order, min(int(order), self.method.max_order)
        )
        self._order_used = self.order
        self._set_lte_order(self.order)
        self._good_accepts = 0
        self._reject_streak = 0
        self._rejects_at_floor = 0
        if dt is not None:
            self.dt = self._quantize(min(max(dt, self.dt_min), self.dt_max))

    def _quantize(self, dt: float) -> float:
        """Largest grid value ``dt_max / 2^k`` not exceeding ``dt``."""
        if dt >= self.dt_max:
            return self.dt_max
        level = int(math.ceil(math.log2(self.dt_max / dt) - 1e-9))
        return self.dt_max / 2.0 ** min(level, self._max_level)

    # -- the propose / report loop -------------------------------------------

    @property
    def finished(self) -> bool:
        return self.t >= self.t_stop * (1.0 - _TIME_EPS)

    @property
    def at_dt_floor(self) -> bool:
        """Whether the working step size sits on ``dt_min`` — the
        point where non-convergence can no longer be answered by
        shrinking and escalation (rescue, quarantine, abort) begins."""
        return self.dt <= self.dt_min * (1.0 + 1e-9)

    def reset_floor_rejections(self) -> None:
        """Forgive the accumulated at-floor rejections.

        The batched engine calls this after quarantining the samples
        responsible for an LTE underflow: the remaining samples get a
        fresh underflow allowance instead of inheriting the dead
        samples' strike count.
        """
        self._rejects_at_floor = 0

    @property
    def next_breakpoint(self) -> float:
        return self._breakpoints[self._bp_index]

    def propose(self) -> Tuple[float, float]:
        """``(t_target, dt)`` of the next candidate step.

        ``t_target`` is exact (the breakpoint itself when the step is
        truncated), so source evaluation and recording never suffer
        accumulated float drift at event times.
        """
        bp = self.next_breakpoint
        remaining = bp - self.t
        if self.dt >= remaining * (1.0 - 1e-9):
            self._landing_on_bp = True
            return bp, remaining
        self._landing_on_bp = False
        return self.t + self.dt, self.dt

    def error_ratio(self, x_full: np.ndarray, x_half: np.ndarray, n_nodes: int) -> float:
        """Estimated LTE over tolerance for one candidate step.

        Compares node voltages only (branch currents are linear
        consequences of the voltages); the tolerance is
        ``abstol + reltol * |x|_inf`` so it tracks the live signal
        scale — tiny startup seeds are not held to the tolerance of
        the settled amplitude.
        """
        diff = x_full[:n_nodes] - x_half[:n_nodes]
        if diff.size == 0:
            return 0.0
        err = float(np.abs(diff).max()) / self._err_div
        scale = float(np.abs(x_half[:n_nodes]).max())
        return err / (self.abstol + self.reltol * scale)

    def error_ratio_samples(
        self, x_full: np.ndarray, x_half: np.ndarray, n_nodes: int
    ) -> np.ndarray:
        """Per-sample LTE ratios of a lockstep batch, shape ``(S,)``.

        Each sample's ratio uses its own signal scale, exactly like
        :meth:`error_ratio` would; the batched engine uses the full
        vector to attribute an LTE underflow to the samples actually
        responsible before quarantining them.
        """
        diff = x_full[:, :n_nodes] - x_half[:, :n_nodes]
        if diff.size == 0:
            return np.zeros(len(x_full))
        err = np.abs(diff).max(axis=1) / self._err_div
        scale = np.abs(x_half[:, :n_nodes]).max(axis=1)
        return err / (self.abstol + self.reltol * scale)

    def error_ratio_many(
        self,
        x_full: np.ndarray,
        x_half: np.ndarray,
        n_nodes: int,
        mask: Optional[np.ndarray] = None,
    ) -> float:
        """Worst-sample LTE ratio of a lockstep batch.

        ``x_full``/``x_half`` are stacked ``(S, size)`` iterates.  The
        batched transient engine integrates every sample on one shared
        grid, so a candidate step is acceptable only when the *worst*
        sample meets tolerance.  ``mask`` (boolean, ``(S,)``) selects
        the samples that count — quarantined samples' frozen states
        must not veto the healthy ones' steps.
        """
        ratios = self.error_ratio_samples(x_full, x_half, n_nodes)
        if mask is not None:
            ratios = ratios[mask]
        if ratios.size == 0:
            return 0.0
        return float(ratios.max())

    def accept(self, t_taken: float, dt_taken: float, ratio: float) -> None:
        """Commit a step that met tolerance; grow the next step."""
        self.t = t_taken
        self.accepted += 1
        self._rejects_at_floor = 0
        self._reject_streak = 0
        self.min_dt_taken = min(self.min_dt_taken, dt_taken)
        self.max_dt_taken = max(self.max_dt_taken, dt_taken)
        order = self._order_used
        self.accepted_by_order[order] = self.accepted_by_order.get(order, 0) + 1
        self.crossed_breakpoint = False
        if self._landing_on_bp:
            if self._bp_index < len(self._breakpoints) - 1:
                self._bp_index += 1
                self.breakpoints_hit += 1
                self.crossed_breakpoint = True
                # The LTE history is meaningless across a
                # discontinuity: restart a couple of grid levels down.
                # Deliberately relative to the *grid* step, not the
                # (possibly sliver-sized) truncated dt actually taken —
                # plunging to dt_min after every event would re-climb
                # the whole ladder and thrash the per-dt caches;
                # rejection walks the step down further if the far
                # side really needs it.
                self.dt = self._quantize(max(self.dt_min, self.dt / 4.0))
                if self.order_control:
                    # Multistep history restarts on the far side.
                    self.order = self.method.min_order
                self._good_accepts = 0
            self._landing_on_bp = False
            return
        if self.order_control and self.order < self.method.max_order:
            # Raise the target order after a streak of comfortable
            # accepts at the (un-clamped) target — the per-order LTE
            # estimate says the formula has headroom to spend on
            # larger steps at higher order.
            if order == self.order and ratio < _ORDER_RAISE_RATIO:
                self._good_accepts += 1
                if self._good_accepts >= _ORDER_RAISE_ACCEPTS:
                    self.order += 1
                    self.order_raises += 1
                    self._good_accepts = 0
            else:
                self._good_accepts = 0
        if ratio <= 0.0:
            growth = self.max_growth
        else:
            growth = min(self.max_growth, self.safety * ratio ** (-self._exponent))
        if growth > 1.0:
            # Quantization rounds down, so the step only actually grows
            # when the controller clears the next grid level; a step
            # that merely passed (ratio near 1) keeps its size — on a
            # binary grid, shrinking an accepted step wastes work that
            # rejection handles anyway.
            self.dt = self._quantize(min(self.dt_max, self.dt * growth))

    def reject(self, ratio: float) -> None:
        """Shrink after a step that missed tolerance; raise on underflow."""
        self.rejected += 1
        self._landing_on_bp = False
        order = self._order_used
        self.rejected_by_order[order] = self.rejected_by_order.get(order, 0) + 1
        self._good_accepts = 0
        if self.order_control:
            self._reject_streak += 1
            if (
                self._reject_streak >= _ORDER_LOWER_REJECTS
                and self.order > self.method.min_order
            ):
                self.order -= 1
                self.order_lowers += 1
                self._reject_streak = 0
        if self.at_dt_floor:
            self._rejects_at_floor += 1
            if self._rejects_at_floor >= 3:
                raise SimulationError(
                    f"adaptive step control underflow at t={self.t:.4e}: "
                    f"LTE still {ratio:.3g}x over tolerance at dt_min="
                    f"{self.dt_min:.3e}; loosen lte_reltol/lte_abstol or "
                    "lower dt_min"
                )
            return
        shrink = self.safety * ratio ** (-self._exponent) if ratio > 0 else 0.5
        shrink = min(0.5, max(0.1, shrink))
        self.dt = self._quantize(max(self.dt_min, self.dt * shrink))

    def reject_nonconvergence(self) -> None:
        """Newton failed to converge: treat like a hard LTE rejection."""
        self.reject(ratio=32.0)

    # -- diagnostics ----------------------------------------------------------

    def stats(self) -> dict:
        # Order diagnostics: the histogram *is* the per-order accepted
        # count — published under both names so histogram consumers and
        # accepted/rejected-pair consumers read naturally, built once.
        accepted_by_order = dict(sorted(self.accepted_by_order.items()))
        stats = {
            "accepted_steps": self.accepted,
            "rejected_steps": self.rejected,
            "breakpoints_hit": self.breakpoints_hit,
            "min_dt": self.min_dt_taken if self.accepted else 0.0,
            "max_dt": self.max_dt_taken,
            "order_histogram": accepted_by_order,
            "accepted_by_order": accepted_by_order,
            "rejected_by_order": dict(sorted(self.rejected_by_order.items())),
            "final_order": self._order_used,
        }
        if self.order_control:
            stats["order_raises"] = self.order_raises
            stats["order_lowers"] = self.order_lowers
        return stats
