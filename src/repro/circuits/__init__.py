"""A small SPICE-like circuit simulator (MNA) used as the substrate for
all netlist-level experiments in the reproduction.

Public surface:

* :class:`Circuit` — the netlist container with factory helpers.
* Components: :class:`Resistor`, :class:`Capacitor`, :class:`Inductor`,
  :class:`Switch`, :class:`VoltageSource`, :class:`CurrentSource`,
  :class:`VCCS`, :class:`VCVS`, :class:`NonlinearVCCS`, :class:`Diode`,
  :class:`Mosfet` (+ :class:`MosfetParams`).
* Analyses: :func:`solve_dc`, :func:`dc_sweep`, :func:`run_transient`,
  :func:`run_ac`.
* Stimuli: :func:`dc`, :func:`sine`, :func:`pulse`, :func:`pwl`.

Solver internals (importable for tests/benchmarks):

* :mod:`~repro.circuits.linsolve` — shared dense solve, Newton
  damping, reusable LU factorizations.
* :mod:`~repro.circuits.backend` — pluggable dense/sparse linear-
  algebra backends (``backend="auto"|"dense"|"sparse"`` on every
  analysis): dense for the paper's lumped netlists, CSR + splu for
  distributed netlists with hundreds-to-thousands of unknowns.
* :mod:`~repro.circuits.assembly` — incremental transient stamping:
  linear stamps cached once per step size (small per-``dt`` LRU),
  nonlinear devices restamped per Newton iteration.
* :mod:`~repro.circuits.integration` — pluggable integration methods
  (``method="trap"|"be"|"bdf2"|"gear"`` on the transient engines):
  one-step trapezoidal/backward-Euler plus variable-order BDF (Gear,
  orders 1-3) with non-uniform-history companion coefficients.
* :mod:`~repro.circuits.stepcontrol` — LTE-based adaptive step
  control (step-doubling error estimate, breakpoint forcing, and
  order control for the variable-order methods) driving
  ``run_transient(step_control="adaptive")``.
* :mod:`~repro.circuits.reference` — the preserved seed transient
  engine (:func:`run_transient_reference`), golden baseline for the
  optimized engine.
* :mod:`~repro.circuits.preflight` / :mod:`~repro.circuits.health` —
  the numerical health layer: structural netlist lint before any
  solve (``preflight="warn"|"raise"`` on every analysis), NaN /
  conditioning guards and post-step certification during transients
  (``TransientOptions(guards=True, certify=True)``), with structured
  :class:`HealthReport` records in ``stats["health"]``.
"""

from .ac import ACResult, run_ac
from .backend import (
    DenseBackend,
    MatrixBackend,
    SparseBackend,
    resolve_backend,
)
from .batched import (
    BatchIncompatible,
    BatchedOperatingPoints,
    probe_stiffness_ratios,
    run_transient_batched,
    solve_dc_batched,
)
from .corners import FAST_COLD, FAST_HOT, SLOW_COLD, SLOW_HOT, TYPICAL, ProcessCorner
from .component import Component, MNASystem, StampContext
from .controlled import VCCS, VCVS, NonlinearVCCS
from .dcop import NewtonOptions, OperatingPoint, SweepResult, dc_sweep, solve_dc
from .diode import Diode, junction_iv
from .elements import Capacitor, Inductor, Resistor, Switch
from .integration import (
    BDF2,
    BackwardEuler,
    Gear,
    IntegrationMethod,
    StepCoeffs,
    Trapezoidal,
    resolve_method,
)
from .health import CONDITION_LIMIT, HealthReport
from .mosfet import Mosfet, MosfetParams, NMOS_DEFAULT, PMOS_DEFAULT
from .netlist import Circuit
from .preflight import Diagnostic, PreflightWarning, check_netlist
from .noise import NoiseResult, run_noise
from .subcircuit import CellBuilder, SubcircuitDefinition
from .reference import run_transient_reference
from .envelope_transient import EnvelopeOptions, run_transient_envelope
from .sources import CurrentSource, VoltageSource, dc, pulse, pwl, sine, source_breakpoints
from .stepcontrol import (
    Phase,
    PhaseSchedule,
    StepController,
    collect_breakpoints,
    stiffness_bins,
)
from .transient import TransientOptions, TransientResult, run_transient

__all__ = [
    "ACResult",
    "run_ac",
    "MatrixBackend",
    "DenseBackend",
    "SparseBackend",
    "resolve_backend",
    "BatchIncompatible",
    "BatchedOperatingPoints",
    "probe_stiffness_ratios",
    "run_transient_batched",
    "solve_dc_batched",
    "ProcessCorner",
    "TYPICAL",
    "SLOW_COLD",
    "SLOW_HOT",
    "FAST_COLD",
    "FAST_HOT",
    "Component",
    "MNASystem",
    "StampContext",
    "VCCS",
    "VCVS",
    "NonlinearVCCS",
    "NewtonOptions",
    "OperatingPoint",
    "SweepResult",
    "dc_sweep",
    "solve_dc",
    "Diode",
    "junction_iv",
    "Capacitor",
    "Inductor",
    "Resistor",
    "Switch",
    "IntegrationMethod",
    "StepCoeffs",
    "Trapezoidal",
    "BackwardEuler",
    "BDF2",
    "Gear",
    "resolve_method",
    "Mosfet",
    "MosfetParams",
    "NMOS_DEFAULT",
    "PMOS_DEFAULT",
    "Circuit",
    "CONDITION_LIMIT",
    "HealthReport",
    "Diagnostic",
    "PreflightWarning",
    "check_netlist",
    "NoiseResult",
    "run_noise",
    "CellBuilder",
    "SubcircuitDefinition",
    "CurrentSource",
    "VoltageSource",
    "dc",
    "pulse",
    "pwl",
    "sine",
    "source_breakpoints",
    "Phase",
    "PhaseSchedule",
    "StepController",
    "collect_breakpoints",
    "stiffness_bins",
    "EnvelopeOptions",
    "run_transient_envelope",
    "TransientOptions",
    "TransientResult",
    "run_transient",
    "run_transient_reference",
]
