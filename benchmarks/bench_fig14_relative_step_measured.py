"""Fig 14 — measured relative current-limitation step.

Paper: "Value for code 96 is negative (round 1 step in segment 7) and
is removed for displaying in logarithmic scale.  The DAC is
non-monotonic at this code, but this is not a problem, because the
regulation loop will regulate the amplitude."
"""

import numpy as np

from repro.core import HardwareDAC
from repro.mc import MismatchProfile

from common import save_result
from repro.analysis import render_series


def generate_fig14():
    dac = HardwareDAC(mismatch=MismatchProfile.measured_like())
    codes = np.arange(2, 128)
    steps = dac.relative_steps(start_code=2)
    return dac, codes, steps


def test_fig14_relative_step_measured(benchmark):
    dac, codes, steps = benchmark(generate_fig14)

    # The paper's signature: exactly one non-monotonic code, at 96.
    assert dac.non_monotonic_codes() == [96]
    step_96 = steps[96 - 2]
    assert step_96 < 0.0
    # All other codes above 16 remain positive.
    mask = (codes >= 17) & (codes != 96)
    assert np.all(steps[mask] > 0)
    # Still below the regulation window (margin 1.3 * 6.25 % = 8.1 %),
    # so regulation is unaffected — the paper's argument.
    assert dac.max_relative_step(start_code=17) < 0.081

    # Fig 14 log display: negative value removed.
    log_safe = np.where(steps > 0, steps * 100, np.nan)
    save_result(
        "fig14_relative_step_measured",
        render_series(
            codes,
            log_safe,
            x_label="code",
            y_label="rel step (%)",
            title=(
                "Fig 14: measured relative step; code 96 negative "
                f"({step_96 * 100:.2f} %, removed from log display)"
            ),
            max_points=33,
        ),
    )
