"""Fig 4 — relative voltage step vs current-limitation code.

Paper: "For codes above 16 the amplitude step varies between 3.23 %
and 6.25 %" and the regulation window must exceed the largest step.
"""

import numpy as np

from repro.core import ExponentialPWLDAC
from repro.core.constants import MAX_RELATIVE_STEP, MIN_RELATIVE_STEP_ABOVE_16

from common import save_result
from repro.analysis import render_series


def generate_fig04():
    dac = ExponentialPWLDAC()
    codes = np.arange(17, 128)
    steps = dac.relative_steps(start_code=17)
    return codes, steps


def test_fig04_relative_step(benchmark):
    codes, steps = benchmark(generate_fig04)

    # The paper's exact band for codes above 16.
    assert steps.min() * 100 == round(3.23, 2) or abs(steps.min() - 1 / 31) < 1e-12
    assert abs(steps.min() - MIN_RELATIVE_STEP_ABOVE_16) < 1e-12
    assert abs(steps.max() - MAX_RELATIVE_STEP) < 1e-12
    assert abs(steps.min() * 100 - 3.23) < 0.01
    assert abs(steps.max() * 100 - 6.25) < 0.001
    # Eq 5: a relative current step IS the relative voltage step.

    save_result(
        "fig04_relative_step",
        render_series(
            codes,
            steps * 100,
            x_label="code",
            y_label="rel step (%)",
            title="Fig 4: relative voltage step vs code (3.23%..6.25% above 16)",
            max_points=30,
        ),
    )
