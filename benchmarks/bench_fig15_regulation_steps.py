"""Fig 15 — oscillator regulation steps (detail).

The scope shot shows the envelope stepping once per regulation period
(1 ms) with the PWL-DAC's relative step size, walking into the window
and holding.  Regenerated with the behavioural system started from a
deliberately low NVM preset so several steps are visible.
"""

import numpy as np

from repro.analysis import find_steps, render_table
from repro.core.oscillator_system import OscillatorDriverSystem

from common import save_result, standard_config


def generate_fig15():
    # Preset well below the target so the loop has to climb ~10 codes.
    config = standard_config(nvm_code=50, substeps_per_tick=20)
    system = OscillatorDriverSystem(config)
    trace = system.run(0.02)
    return config, trace


def test_fig15_regulation_steps(benchmark):
    config, trace = benchmark.pedantic(generate_fig15, rounds=1, iterations=1)

    wave = trace.amplitude_waveform()
    # Detect the staircase steps in the envelope (ignore startup).
    settled = wave.window(2e-3, wave.t_stop)
    steps = find_steps(settled, min_delta=0.005)
    assert len(steps) >= 5, "several regulation steps must be visible"

    # Steps arrive on the 1 ms regulation grid...
    times = np.array([s.time for s in steps])
    deltas = np.diff(times)
    assert np.all(np.abs(deltas / config.regulation_period - np.round(deltas / config.regulation_period)) < 0.25)
    # ...with the PWL-DAC relative step size (3.2 %..6.5 %).
    rel = np.array([s.relative for s in steps])
    climb = rel[rel > 0]
    assert np.all(climb > 0.025) and np.all(climb < 0.07)

    # The loop ends inside the window and holds.
    tail_codes = trace.code[-40:]
    assert tail_codes.max() - tail_codes.min() <= 1

    rows = [
        (f"{s.time * 1e3:.2f} ms", f"{s.before:.3f} V", f"{s.after:.3f} V", f"{s.relative * 100:+.2f} %")
        for s in steps
    ]
    save_result(
        "fig15_regulation_steps",
        render_table(
            ["time", "A before", "A after", "rel step"],
            rows,
            title=(
                "Fig 15: regulation staircase detail "
                f"(start code 50 -> final code {trace.final_code})"
            ),
        ),
    )
