"""Ablation — exponential PWL DAC vs a linear DAC (§3, Fig 3).

Paper: a linear amplitude step requires exponential current control;
the 7-bit PWL DAC "corresponds to an 11-bit linear DAC".  We quantify
both claims: bits needed for the same range at the same worst-case
relative resolution, and the relative-step behaviour across codes.
"""

import numpy as np

from repro.core import (
    EQUIVALENT_LINEAR_BITS,
    ExponentialPWLDAC,
    LinearDAC,
)
from repro.core.constants import I_LSB

from common import save_result
from repro.analysis import render_table


def generate_ablation():
    pwl = ExponentialPWLDAC()
    linear11 = LinearDAC(bits=11, i_lsb=I_LSB)
    linear7 = LinearDAC(bits=7, i_lsb=pwl.full_scale() / 127)

    pwl_steps = pwl.relative_steps(start_code=17)
    lin11_steps = linear11.relative_steps(start_code=17)
    lin7_steps = linear7.relative_steps(start_code=2)

    return {
        "pwl_range": (pwl.current(16), pwl.full_scale()),
        "pwl_codes": pwl.n_codes,
        "lin11_covers": linear11.codes_for_same_range(pwl) <= linear11.n_codes,
        "lin10_covers": LinearDAC(bits=10, i_lsb=I_LSB).codes_for_same_range(pwl)
        <= LinearDAC(bits=10, i_lsb=I_LSB).n_codes,
        "pwl_step_max": float(pwl_steps.max()),
        "pwl_step_min": float(pwl_steps.min()),
        # Linear DAC relative step at the working point equivalent to
        # PWL code 17 (current = 17 LSB) and near full scale.
        "lin11_step_at_17lsb": float(lin11_steps[0]),
        "lin11_step_at_top": float(lin11_steps[-1]),
        "lin7_step_worst": float(lin7_steps.max()),
    }


def test_ablation_dac_laws(benchmark):
    r = benchmark.pedantic(generate_ablation, rounds=1, iterations=1)

    # Range equivalence: 11 linear bits cover the PWL range, 10 do not.
    assert r["lin11_covers"]
    assert not r["lin10_covers"]
    assert EQUIVALENT_LINEAR_BITS == 11
    # PWL: near-constant relative step (factor < 2 across all codes).
    assert r["pwl_step_max"] / r["pwl_step_min"] < 2.0
    # Linear DAC at the same resolution: relative step varies by the
    # full current ratio (~124x from 16 LSB to full scale).
    assert r["lin11_step_at_17lsb"] / r["lin11_step_at_top"] > 100
    # A 7-bit *linear* DAC over the same range would have a worst-case
    # step of 100 % — unusable for 3-6 % amplitude control.
    assert r["lin7_step_worst"] >= 0.99

    save_result(
        "ablation_dac_laws",
        render_table(
            ["metric", "value"],
            [
                ("PWL 7-bit worst/best rel step (codes>16)", f"{r['pwl_step_max']*100:.2f} % / {r['pwl_step_min']*100:.2f} %"),
                ("11-bit linear covers PWL range", str(r["lin11_covers"])),
                ("10-bit linear covers PWL range", str(r["lin10_covers"])),
                ("11-bit linear rel step @17 LSB", f"{r['lin11_step_at_17lsb']*100:.2f} %"),
                ("11-bit linear rel step @full scale", f"{r['lin11_step_at_top']*100:.3f} %"),
                ("7-bit linear worst rel step", f"{r['lin7_step_worst']*100:.0f} %"),
            ],
            title="Ablation §3: exponential-PWL vs linear DAC",
        ),
    )
