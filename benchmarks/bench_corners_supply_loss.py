"""Extension — Fig 17 isolation across automotive corners.

The paper's driver works "in a harsh environment"; the supply-loss
isolation of the Fig 11 stage must therefore survive process spread
and -40..125 C.  Cold raises thresholds (wider dead zone, less
current); hot lowers thresholds and multiplies junction leakage —
the stressing direction.
"""

from repro.campaigns import corner_sweep
from repro.circuits.corners import FAST_COLD, FAST_HOT, SLOW_COLD, SLOW_HOT, TYPICAL
from repro.core import run_supply_loss_sweep

from common import save_result
from repro.analysis import format_si, render_table

CORNERS = (TYPICAL, SLOW_COLD, SLOW_HOT, FAST_COLD, FAST_HOT)


def _corner_metrics(corner):
    result = run_supply_loss_sweep("fig11", n_points=61, corner=corner)
    return {
        "corner": corner.name,
        "i_operating": max(
            abs(result.current_at(1.35)), abs(result.current_at(-1.35))
        ),
        "i_max": result.max_loading_current(),
        "vdd_pump": result.vdd_at(3.0),
    }


def generate():
    by_corner = corner_sweep(_corner_metrics, CORNERS)
    return [by_corner[corner.name] for corner in CORNERS]


def test_corners_supply_loss(benchmark):
    rows = benchmark.pedantic(generate, rounds=1, iterations=1)

    for row in rows:
        # Isolation at the 2.7 Vpp operating point holds at all corners.
        assert row["i_operating"] < 250e-6, row
        # And the worst case stays sub-2 mA over the ±3 V sweep.
        assert row["i_max"] < 2e-3, row
    # Hot corners conduct more than cold ones (leakage + lower Vt).
    by_name = {r["corner"]: r for r in rows}
    assert by_name["ss-125C"]["i_operating"] >= by_name["ss-m40C"]["i_operating"]

    save_result(
        "corners_supply_loss",
        render_table(
            ["corner", "|I| at 2.7 Vpp", "max |I| (±3 V)", "Vdd pump at +3 V"],
            [
                (
                    r["corner"],
                    format_si(r["i_operating"], "A"),
                    format_si(r["i_max"], "A"),
                    f"{r['vdd_pump']:.2f} V",
                )
                for r in rows
            ],
            title="Extension: Fig 11 supply-loss isolation across corners",
        ),
    )
