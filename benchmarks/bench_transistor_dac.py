"""Extension — the Fig 5/6 mirror path at transistor level.

Cross-checks three models of the same hardware: the ideal segment law
(Fig 3), the behavioural ratio model (HardwareDAC), and a two-stage
NMOS mirror cascade solved in the MNA simulator.  The transistor path
adds the systematic channel-length-modulation gain error a real
mirror has — a fidelity level the paper's measured Fig 13 includes by
construction.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import HardwareDAC, multiplication_factor
from repro.core.constants import I_LSB
from repro.core.mirror_netlist import MirrorNetlistParams, transistor_dac_transfer

from common import save_result

CODES = (1, 8, 16, 31, 48, 64, 80, 96, 112, 127)


def generate():
    behavioural = HardwareDAC()
    transistor = transistor_dac_transfer(CODES)
    ideal = [multiplication_factor(c) * I_LSB for c in CODES]
    behav = [behavioural.current(c) for c in CODES]
    return ideal, behav, transistor


def test_transistor_dac(benchmark):
    ideal, behav, transistor = benchmark.pedantic(generate, rounds=1, iterations=1)

    ideal_arr = np.asarray(ideal)
    trans_arr = np.asarray(transistor)
    errors = trans_arr / ideal_arr - 1.0
    # Behavioural model is exact; transistor path within the CLM budget
    # and monotonic.
    assert np.allclose(behav, ideal, rtol=1e-12)
    assert np.all(np.abs(errors) < 0.05)
    assert np.all(np.diff(trans_arr) > 0)
    # Ideal-device control: lam = 0 removes the error.
    control = transistor_dac_transfer([64], MirrorNetlistParams(lam=0.0))[0]
    assert abs(control / (multiplication_factor(64) * I_LSB) - 1.0) < 1e-4

    rows = [
        (
            code,
            f"{i * 1e3:.4f}",
            f"{b * 1e3:.4f}",
            f"{t * 1e3:.4f}",
            f"{e * 100:+.2f} %",
        )
        for code, i, b, t, e in zip(CODES, ideal, behav, transistor, errors)
    ]
    save_result(
        "transistor_dac",
        render_table(
            ["code", "ideal (mA)", "behavioural (mA)", "transistor (mA)", "CLM error"],
            rows,
            title="Extension: Fig 5/6 mirror path, three abstraction levels",
        ),
    )
