"""Ablation — the NVM amplitude preset (§4).

Paper: "A few us after startup an internal non-volatile memory is read
and the code is set to a predefined value to speed up settling of the
oscillator amplitude."  Without the preset the loop has to walk from
the POR code (105) to the operating code at 1 code/ms.  We measure the
amplitude settling time with a correct preset, a stale preset (10
codes off), and no preset at all.
"""

from repro.analysis import render_table, settling_time
from repro.core.oscillator_system import OscillatorConfig, OscillatorDriverSystem

from common import save_result, standard_tank


def settle_time_for(nvm_code: int) -> float:
    config = OscillatorConfig(
        tank=standard_tank(), nvm_code=nvm_code, substeps_per_tick=10
    )
    trace = OscillatorDriverSystem(config).run(0.08)
    wave = trace.amplitude_waveform()
    return settling_time(wave, final_value=float(wave.y[-1]), tolerance=0.05)


def generate():
    config = OscillatorConfig(tank=standard_tank())
    good_code = config.derived_nvm_code()
    return [
        {"label": "correct NVM preset", "code": good_code, "t": settle_time_for(good_code)},
        {"label": "stale preset (-10 codes)", "code": good_code - 10, "t": settle_time_for(good_code - 10)},
        {"label": "no preset (stays at POR 105)", "code": 105, "t": settle_time_for(105)},
    ]


def test_ablation_nvm_preset(benchmark):
    rows = benchmark.pedantic(generate, rounds=1, iterations=1)

    good, stale, none = rows
    # The preset's purpose: settle much faster than walking from 105.
    assert good["t"] < stale["t"] < none["t"]
    assert none["t"] > 5 * good["t"]
    # With a correct preset the amplitude settles in a few ms
    # (startup + detector lag), far below the code-walk time.
    assert good["t"] < 6e-3
    # Walking ~45 codes at 1 ms/code costs tens of ms.
    assert none["t"] > 0.025

    save_result(
        "ablation_nvm_preset",
        render_table(
            ["scenario", "preset code", "5% settling"],
            [(r["label"], r["code"], f"{r['t'] * 1e3:.1f} ms") for r in rows],
            title="Ablation §4: NVM preset 'to speed up settling'",
        ),
    )
