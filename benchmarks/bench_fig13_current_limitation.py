"""Fig 13 — measured current limitation of the driver.

Paper: 1 LSB is 12.5 uA, full scale ≈ 24.8 mA, measured on silicon
with mirror/prescaler mismatch.  The structural DAC model with the
measured-like mismatch profile regenerates the curve.
"""

import numpy as np

from repro.core import HardwareDAC
from repro.core.constants import I_LSB, I_MAX_DRIVER
from repro.mc import MismatchProfile

from common import save_result
from repro.analysis import format_si, render_series


def generate_fig13():
    dac = HardwareDAC(mismatch=MismatchProfile.measured_like())
    return dac, dac.transfer()


def test_fig13_current_limitation(benchmark):
    dac, currents = benchmark(generate_fig13)

    # Anchors from the figure: LSB and ~24.8 mA full scale (few % of
    # mismatch allowed — it is a *measured* curve).
    assert abs(currents[1] / I_LSB - 1.0) < 0.02
    assert abs(currents[127] / I_MAX_DRIVER - 1.0) < 0.05
    # Log-scale span: >3 decades between code 1 and 127 (Fig 13 right axis).
    assert currents[127] / currents[1] > 1000
    # Exponential-like: roughly constant ratio per code above 16.
    ratios = currents[17:] / currents[16:-1]
    assert 0.98 < ratios.min() and ratios.max() < 1.07

    save_result(
        "fig13_current_limitation",
        render_series(
            np.arange(128),
            currents * 1e3,
            x_label="code",
            y_label="I (mA)",
            title=(
                "Fig 13: measured current limitation "
                f"(1 LSB = {format_si(I_LSB, 'A')}, "
                f"full scale = {format_si(currents[127], 'A')})"
            ),
            max_points=33,
        ),
    )
