"""Performance harness for the transient engine and its campaigns.

Times the workloads the incremental-stamping + adaptive-stepping
engine was built for and writes ``BENCH_transient.json`` (repo root by
default) so future PRs have a perf trajectory to regress against:

* ``fig16_startup`` — the Fig 16 carrier-resolution MNA startup (80
  carrier cycles, trapezoidal).  Baseline: the preserved seed engine
  (:func:`repro.circuits.reference.run_transient_reference`) run live
  on the same machine, so speedups are hardware-independent.
* ``fig16_startup_adaptive`` — the same startup with LTE step control
  against the *fine* fixed-step golden run (4x carrier resolution)
  whose accuracy adaptive mode must match: records wall-clock and
  Newton-solve ratios plus the amplitude/frequency error actually
  achieved.
* ``supply_loss_adaptive`` — a §8-style supply-loss corner: forced
  carrier, the drive collapses at the fault breakpoint, ring-down,
  then a long quiet tail.  Stiff-then-slow — the workload class
  adaptive stepping exists for.
* ``supply_loss_gear`` — the same supply-loss scenario at a *tight*
  accuracy target (LTE reltol 1e-6), integrated with adaptive
  trapezoidal (baseline) vs variable-order Gear/BDF3.  The gated
  asset is the **accepted-step economy**: at matched amplitude error
  the third-order formula walks the decay and quiet tail in less
  than half the steps trap needs — on large netlists every accepted
  step is an assembly + factorization, so the step count is the
  hardware-independent currency.  (On this 7-unknown tank the raw
  wall clock favours trap — the per-step cost is Python overhead,
  not linear algebra — which is why the gate rides the deterministic
  step ratio, not seconds.)
* ``fig16_startup_envelope`` — the Fig 16 startup integrated by the
  cycle-skipping envelope engine
  (:func:`repro.circuits.run_transient_envelope`): resolve a few
  anchor cycles, advance N periods via the describing-function
  amplitude ODE, re-anchor with a correction burst whose mismatch
  controls N.  Gated on the deterministic resolved-cycle economy
  (>= 5x fewer resolved cycles than the carrier run) and Newton-solve
  count at <= 1% settled-amplitude error; wall clock is a loose
  floor.  The ``skip="off"`` escape hatch is gated separately by the
  live ``envelope_identity`` check in ``--check`` mode.
* ``supply_loss_envelope`` — the supply-loss corner integrated
  multi-rate: a :class:`repro.circuits.PhaseSchedule` runs trap at
  carrier resolution until the fault, then switches live to L-stable
  Gear/BDF3 with a coarse dt for the ring-down and quiet tail
  (multistep history bootstrapped at the boundary).  Baseline:
  adaptive trap over the whole run at identical tolerances; gated on
  the settle-phase accepted-step economy at matched pre-fault
  amplitude and frequency error (the carrier phase is deliberately
  identical to the baseline, so only the tail can win).
* ``mc_startup`` — a Monte-Carlo campaign of short carrier-resolution
  startups over mismatch draws (driver gm / tank Q spread), routed
  through the shared campaign runner.  Baseline: the same campaign on
  the seed engine.
* ``mc_startup_batched`` — the same campaign shape at 64 samples,
  executed by the lockstep batched engine
  (:func:`repro.circuits.run_transient_batched`): stacked
  ``(S, n, n)`` systems, one time loop, per-sample Newton masks.
  Baseline: the optimized *per-sample* engine run sample by sample on
  the same machine; per-sample amplitudes must match at rtol 1e-9.
* ``mc_startup_sharded`` — the same 64-sample lockstep campaign
  executed by the sharded campaign layer
  (``BatchOptions(batch_mode="sharded")``): sub-batches dispatched
  across a process pool, fixed-grid records streamed through shared
  memory, merges bit-identical to the single-batch run.  Baseline:
  the PR-3 single lockstep batch on the same machine.  On multi-core
  hosts the sharded run must win >= 1.5x; on one core it must degrade
  gracefully to sequential in-process shards within 10% of the
  single batch.  The entry stamps the effective worker and shard
  counts so recorded speedups carry their hardware context.
* ``ladder_transient_dense_vs_sparse`` — the distributed sensing-coil
  ladder (:class:`repro.sensor.coils.DistributedCoil`): an N-segment
  RLC transmission-line netlist with hundreds of unknowns, the first
  workload family where the sparse backend
  (:mod:`repro.circuits.backend`) wins.  Baseline: the dense backend
  on the identical netlist and grid; the two waveforms must match at
  rtol 1e-9.
* ``coil_mesh_krylov`` — the 2-D sensing-coil mesh
  (:class:`repro.sensor.coils.CoilMesh`) at >= 10k unknowns, pulse
  drive, adaptive stepping: the Krylov backend's stale-LU
  preconditioner pool vs the sparse backend's per-dt-entry ``splu``
  refactorization.  The gated asset is the **factorization economy**:
  the anchor pool plus affine dt-entry reconstruction holds the LU
  count roughly constant while the sparse run refactors on every
  dt-cache build and rebuild, so at 10k+ unknowns (where ``splu``
  dominates wall time) the deterministic refactorization counter must
  show >= 2x fewer factorizations and the wall clock must not fall
  below a loose floor.  Waveforms must match sparse at rtol 1e-6 on
  the shared time points.  The entry stamps the unknown count and
  scipy version — iteration counts ride scipy's GMRES internals.
* ``fault_coverage`` — the §7 FMEA campaign (behavioural system
  model).  Its simulation core is not MNA-based, so the recorded
  baseline is the same code path; the entry tracks absolute seconds.

Regression gate
---------------
``--check`` reruns every workload at the sizes recorded in the
committed baseline JSON and fails (exit 1) if any workload's
``speedup`` regressed by more than ``--tolerance`` (default 15 %), or
if an adaptive workload's amplitude/frequency error exceeded its
acceptance bound.  ``make verify`` wires this behind the tier-1
pytest run.

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py [--out PATH] [--quick]
    PYTHONPATH=src python benchmarks/run_perf.py --check [--baseline PATH]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import sys
import time
import warnings

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import numpy as np

from repro.analysis import envelope_by_peaks, oscillation_frequency
from repro.campaigns import BatchOptions, run_batch
from repro.campaigns.vectorized import run_transient_campaign
from repro.circuits import (
    EnvelopeOptions,
    PhaseSchedule,
    TransientOptions,
    run_transient,
    run_transient_batched,
    run_transient_envelope,
    run_transient_reference,
)
from repro.core import FailureKind, OscillatorNetlist, supply_loss_tank_circuit
from repro.envelope import EnvelopeModel, RLCTank, TanhLimiter
from repro.faults import FaultCampaign
from repro.mc.mismatch import MismatchProfile
from repro.sensor.coils import CoilMesh, DistributedCoil

try:
    import scipy as _scipy

    SCIPY_VERSION = _scipy.__version__
except ImportError:  # pragma: no cover - the sparse workload skips
    SCIPY_VERSION = None

from common import standard_config

#: Fig 16 bench tank and driver (mirrors bench_fig16_startup.py).
TANK = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)
LIMITER = TanhLimiter(gm=6e-3, i_max=2e-3)

#: Acceptance bound on adaptive amplitude/frequency error vs the fine
#: fixed-step golden run (fraction, not percent).
ADAPTIVE_ERROR_LIMIT = 0.01


#: Timing repeats: the optimized engines finish short workloads in
#: tens of milliseconds, where single-shot wall clocks are noisy
#: enough to trip a 15% regression gate on their own.  Best-of-N is
#: the usual stabilizer (minimum ≈ the run with least interference).
TIMING_REPEATS = 5


def _timed(fn, repeats: int = TIMING_REPEATS):
    best = np.inf
    result = None
    for attempt in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# -- fig16 startup -----------------------------------------------------------


def _startup_options(cycles: int) -> TransientOptions:
    return TransientOptions(
        t_stop=cycles / TANK.frequency,
        dt=1.0 / (TANK.frequency * 40),
        method="trap",
        use_dc_operating_point=False,
    )


def _run_startup(engine, cycles: int):
    netlist = OscillatorNetlist(TANK, vref=2.5)
    circuit = netlist.build(LIMITER)
    result = engine(circuit, _startup_options(cycles))
    diff = result.waveform("lc1").y - result.waveform("lc2").y
    return float(np.max(np.abs(diff[-80:]))), result


def bench_fig16_startup(cycles: int = 80) -> dict:
    seed_seconds, (seed_amp, _) = _timed(
        lambda: _run_startup(run_transient_reference, cycles)
    )
    opt_seconds, (opt_amp, opt) = _timed(
        lambda: _run_startup(run_transient, cycles)
    )
    assert abs(seed_amp - opt_amp) < 1e-6 * max(seed_amp, 1.0), (
        "engines disagree on the startup amplitude"
    )
    return {
        "workload": f"carrier-resolution startup, {cycles} cycles, trap",
        "baseline": "seed engine (live, same machine)",
        "cycles": cycles,
        "seed_seconds": seed_seconds,
        "optimized_seconds": opt_seconds,
        "speedup": seed_seconds / opt_seconds,
        # Deterministic work counter for the regression gate: an
        # engine change that costs iterations moves this; machine
        # load cannot.
        "optimized_newton_iterations": opt.stats["newton_iterations"],
    }


# -- fig16 startup, adaptive vs fine fixed golden ----------------------------


def bench_fig16_adaptive(cycles: int = 80) -> dict:
    # The envelope comparison needs the limiter-saturated regime: in
    # the exponential-growth phase any per-step tolerance compounds
    # into a large *relative* envelope difference, so short smoke runs
    # would measure growth-phase sensitivity, not integration quality.
    cycles = max(cycles, 60)
    netlist = OscillatorNetlist(TANK, vref=2.5)
    t_stop = cycles / TANK.frequency

    fixed_seconds, fixed = _timed(
        lambda: netlist.run_startup(
            code=0, t_stop=t_stop, points_per_cycle=160, limiter=LIMITER
        )
    )
    adaptive_seconds, adaptive = _timed(
        lambda: netlist.run_startup(
            code=0, t_stop=t_stop, limiter=LIMITER, step_control="adaptive"
        )
    )
    amp_f = envelope_by_peaks(fixed.differential).y[-1]
    amp_a = envelope_by_peaks(adaptive.differential).y[-1]
    freq_f = oscillation_frequency(fixed.differential.window(0.5 * t_stop, t_stop))
    freq_a = oscillation_frequency(adaptive.differential.window(0.5 * t_stop, t_stop))
    amp_error = abs(amp_a / amp_f - 1.0)
    freq_error = abs(freq_a / freq_f - 1.0)
    assert amp_error < ADAPTIVE_ERROR_LIMIT, f"amplitude error {amp_error:.2%}"
    assert freq_error < ADAPTIVE_ERROR_LIMIT, f"frequency error {freq_error:.2%}"
    return {
        "workload": f"adaptive startup vs fine fixed golden (ppc 160), "
        f"{cycles} cycles",
        "baseline": "fine fixed-step golden run (live, same machine)",
        "cycles": cycles,
        "seed_seconds": fixed_seconds,
        "optimized_seconds": adaptive_seconds,
        "speedup": fixed_seconds / adaptive_seconds,
        "newton_solves_fixed": fixed.stats["newton_iterations"],
        "newton_solves_adaptive": adaptive.stats["newton_iterations"],
        "newton_solve_ratio": fixed.stats["newton_iterations"]
        / adaptive.stats["newton_iterations"],
        "amplitude_error": amp_error,
        "frequency_error": freq_error,
        "accepted_steps": adaptive.stats["accepted_steps"],
        "rejected_steps": adaptive.stats["rejected_steps"],
    }


# -- supply-loss corner (adaptive showcase) ----------------------------------


def bench_supply_loss_adaptive(cycles: int = 400) -> dict:
    f0 = TANK.frequency
    T = 1.0 / f0
    t_fault = (cycles / 10) * T
    t_stop = cycles * T

    def run(options):
        circuit = supply_loss_tank_circuit(
            f0, t_fault, q=15.0, inductance=TANK.inductance
        )
        return run_transient(circuit, options)

    fixed_seconds, fixed = _timed(
        lambda: run(
            TransientOptions(
                t_stop=t_stop, dt=T / 160, use_dc_operating_point=False
            )
        )
    )
    adaptive_seconds, adaptive = _timed(
        lambda: run(
            TransientOptions(
                t_stop=t_stop,
                dt=T / 40,
                step_control="adaptive",
                use_dc_operating_point=False,
                dt_min=T / 640,
                dt_max=8 * T,
            )
        )
    )
    wf = fixed.differential("lc1", "lc2")
    wa = adaptive.differential("lc1", "lc2")
    pre_f = wf.window(0.6 * t_fault, t_fault).peak_to_peak() / 2
    pre_a = wa.window(0.6 * t_fault, t_fault).peak_to_peak() / 2
    post_f = wf.window(t_fault + 4 * T, t_fault + 9 * T).peak_to_peak() / 2
    post_a = wa.window(t_fault + 4 * T, t_fault + 9 * T).peak_to_peak() / 2
    freq_f = oscillation_frequency(wf.window(0.6 * t_fault, t_fault))
    freq_a = oscillation_frequency(wa.window(0.6 * t_fault, t_fault))
    amp_error = abs(pre_a / pre_f - 1.0)
    freq_error = abs(freq_a / freq_f - 1.0)
    assert amp_error < ADAPTIVE_ERROR_LIMIT, f"amplitude error {amp_error:.2%}"
    assert freq_error < ADAPTIVE_ERROR_LIMIT, f"frequency error {freq_error:.2%}"
    return {
        "workload": f"supply-loss corner: drive until {cycles // 10} cycles, "
        f"ring-down + quiet tail to {cycles} cycles",
        "baseline": "fine fixed-step golden run (ppc 160, live, same machine)",
        "cycles": cycles,
        "seed_seconds": fixed_seconds,
        "optimized_seconds": adaptive_seconds,
        "speedup": fixed_seconds / adaptive_seconds,
        "steps_fixed": fixed.stats["steps"],
        "steps_adaptive": adaptive.stats["steps"],
        "step_ratio": fixed.stats["steps"] / adaptive.stats["steps"],
        "amplitude_error": amp_error,
        "frequency_error": freq_error,
        "post_fault_amplitude_fixed": post_f,
        "post_fault_amplitude_adaptive": post_a,
        "accepted_steps": adaptive.stats["accepted_steps"],
        "rejected_steps": adaptive.stats["rejected_steps"],
        "breakpoints_hit": adaptive.stats["breakpoints_hit"],
    }


# -- supply-loss decay: adaptive trap vs variable-order Gear -----------------


def _fitted_amplitude(waveform, t0: float, t1: float, frequency: float) -> float:
    """Carrier amplitude over a window by least-squares sinusoid fit.

    Sampling-robust: an adaptive grid at 15-30 points per cycle makes
    raw peak-to-peak (and even parabola-refined peaks) underestimate
    the carrier by percents, which would charge sampling density to
    the integrator.  The two-basis fit is exact for a sinusoid at any
    sampling density, so it measures integration error alone.
    """
    window = waveform.window(t0, t1)
    basis = np.column_stack([
        np.sin(2 * np.pi * frequency * window.t),
        np.cos(2 * np.pi * frequency * window.t),
    ])
    coef, *_ = np.linalg.lstsq(basis, window.y, rcond=None)
    return float(np.hypot(coef[0], coef[1]))


def bench_supply_loss_gear(cycles: int = 400) -> dict:
    f0 = TANK.frequency
    T = 1.0 / f0
    t_fault = (cycles / 10) * T
    t_stop = cycles * T

    def circuit():
        return supply_loss_tank_circuit(f0, t_fault, q=40.0, inductance=TANK.inductance)

    def options(method, **kw):
        return TransientOptions(
            t_stop=t_stop,
            dt=T / 40,
            method=method,
            step_control="adaptive",
            use_dc_operating_point=False,
            dt_min=T / 81920,
            dt_max=8 * T,
            lte_reltol=1e-6,
            lte_abstol=1e-9,
            **kw,
        )

    # Error reference: one fine fixed-grid golden run (not timed).
    fine = run_transient(
        circuit(),
        TransientOptions(t_stop=t_stop, dt=T / 160, use_dc_operating_point=False),
    )
    amp_ref = _fitted_amplitude(
        fine.differential("lc1", "lc2"), 0.6 * t_fault, t_fault, f0
    )

    trap_seconds, trap = _timed(lambda: run_transient(circuit(), options("trap")))
    gear_seconds, gear = _timed(
        lambda: run_transient(
            circuit(), options("gear", max_order=3, order_control=False)
        )
    )
    amp_err_trap = abs(
        _fitted_amplitude(
            trap.differential("lc1", "lc2"), 0.6 * t_fault, t_fault, f0
        ) / amp_ref - 1.0
    )
    amp_err_gear = abs(
        _fitted_amplitude(
            gear.differential("lc1", "lc2"), 0.6 * t_fault, t_fault, f0
        ) / amp_ref - 1.0
    )
    assert amp_err_trap < ADAPTIVE_ERROR_LIMIT, f"trap amp error {amp_err_trap:.2%}"
    assert amp_err_gear < ADAPTIVE_ERROR_LIMIT, f"gear amp error {amp_err_gear:.2%}"
    step_ratio = trap.stats["accepted_steps"] / gear.stats["accepted_steps"]
    assert step_ratio >= 2.0, (
        f"gear must halve trap's accepted steps, got {step_ratio:.2f}x"
    )
    return {
        "workload": f"supply-loss decay at tight accuracy (lte_reltol 1e-6), "
        f"{cycles} cycles: adaptive trap vs variable-order Gear (BDF3)",
        "baseline": "adaptive trapezoidal, identical tolerances (live, same machine)",
        "cycles": cycles,
        "seed_seconds": trap_seconds,
        "optimized_seconds": gear_seconds,
        "speedup": trap_seconds / gear_seconds,
        "steps_trap": trap.stats["accepted_steps"],
        "steps_gear": gear.stats["accepted_steps"],
        "optimized_steps": gear.stats["accepted_steps"],
        "step_ratio": step_ratio,
        "rejected_trap": trap.stats["rejected_steps"],
        "rejected_gear": gear.stats["rejected_steps"],
        "amplitude_error_trap": amp_err_trap,
        "amplitude_error_gear": amp_err_gear,
        "gear_order_histogram": {
            str(order): count
            for order, count in gear.stats["order_histogram"].items()
        },
    }


# -- multi-rate envelope following ------------------------------------------


def _envelope_recipe(**kw) -> EnvelopeOptions:
    """The describing-function skip recipe for the bench tank/limiter."""
    return EnvelopeOptions(
        period=1.0 / TANK.frequency,
        nodes=("lc1", "lc2"),
        model=EnvelopeModel(TANK, LIMITER),
        **kw,
    )


def bench_fig16_startup_envelope(cycles: int = 400) -> dict:
    """Cycle-skipping envelope startup vs the carrier-resolved run.

    The gated assets are *deterministic*: the resolved-cycle economy
    (the envelope engine must integrate >= 5x fewer carrier cycles
    than the plain engine on the same grid) and the Newton-solve
    count, both immune to machine load.  Envelope accuracy (settled
    amplitude vs the carrier-resolved golden run) is asserted inside
    the bench; wall clock rides the usual loose floor.
    """
    # The skip ladder needs room to grow past the startup transient;
    # below ~120 cycles the anchor + correction bursts dominate and
    # the economy measures burst overhead, not skipping.
    cycles = max(cycles, 120)
    T = 1.0 / TANK.frequency
    options = dataclasses.replace(
        _startup_options(cycles), record_nodes=("lc1", "lc2")
    )
    netlist = OscillatorNetlist(TANK, vref=2.5)

    carrier_seconds, carrier = _timed(
        lambda: run_transient(netlist.build(LIMITER), options)
    )
    env_seconds, env = _timed(
        lambda: run_transient_envelope(
            netlist.build(LIMITER), options, _envelope_recipe()
        )
    )
    e = env.stats["envelope"]
    cycle_ratio = e["total_cycles"] / max(e["resolved_cycles"], 1)
    assert cycle_ratio >= 5.0, (
        f"envelope must resolve >= 5x fewer cycles, got {cycle_ratio:.1f}x"
    )
    a_gold = 0.5 * carrier.differential("lc1", "lc2").window(
        options.t_stop - 2 * T, options.t_stop
    ).peak_to_peak()
    envelope_error = abs(e["final"]["amplitude"] - a_gold) / a_gold
    assert envelope_error <= ADAPTIVE_ERROR_LIMIT, (
        f"envelope amplitude error {envelope_error:.2%}"
    )
    return {
        "workload": f"cycle-skipping envelope startup, {cycles} cycles "
        "(describing-function predictor, adaptive skip length)",
        "baseline": "carrier-resolved trap on the same grid (live, same machine)",
        "cycles": cycles,
        "seed_seconds": carrier_seconds,
        "optimized_seconds": env_seconds,
        "speedup": carrier_seconds / env_seconds,
        "resolved_cycles": e["resolved_cycles"],
        "total_cycles": e["total_cycles"],
        "resolved_cycle_ratio": cycle_ratio,
        "optimized_newton_iterations": env.stats["newton_iterations"],
        "envelope_amplitude_error": envelope_error,
        "skips_attempted": len(e["skip_history"]),
        "final_skip": e["final"]["skip"],
    }


def bench_supply_loss_envelope(cycles: int = 400) -> dict:
    """Multi-rate supply-loss: phased trap->Gear vs whole-run trap.

    The envelope-following treatment of the supply-loss corner: the
    carrier phase is integrated with trapezoidal at carrier
    resolution, then the schedule switches to L-stable Gear/BDF3 with
    a coarse dt at the fault breakpoint — switched live, multistep
    history bootstrapped at the boundary.  Baseline: adaptive trap
    over the whole run at identical tolerances.  The gated asset is
    the *settle-phase* accepted-step economy at matched pre-fault
    amplitude error: the carrier phase is deliberately identical to
    the baseline (that is the point of phasing — keep trap's carrier
    accuracy), so the total step ratio only reflects how much of the
    run the tail occupies, while the post-fault ratio isolates what
    the live switch buys.
    """
    f0 = TANK.frequency
    T = 1.0 / f0
    t_fault = (cycles / 10) * T
    t_stop = cycles * T

    def circuit():
        return supply_loss_tank_circuit(
            f0, t_fault, q=40.0, inductance=TANK.inductance
        )

    def options(**kw):
        return TransientOptions(
            t_stop=t_stop,
            dt=T / 40,
            step_control="adaptive",
            use_dc_operating_point=False,
            dt_min=T / 81920,
            dt_max=8 * T,
            lte_reltol=1e-6,
            lte_abstol=1e-9,
            **kw,
        )

    # Error reference: one fine fixed-grid golden run (not timed).
    fine = run_transient(
        circuit(),
        TransientOptions(t_stop=t_stop, dt=T / 160, use_dc_operating_point=False),
    )
    amp_ref = _fitted_amplitude(
        fine.differential("lc1", "lc2"), 0.6 * t_fault, t_fault, f0
    )

    trap_seconds, trap = _timed(lambda: run_transient(circuit(), options()))
    phased_seconds, phased = _timed(
        lambda: run_transient(
            circuit(),
            options(
                phases=PhaseSchedule.carrier_then_settle(
                    t_fault,
                    carrier_dt=T / 40,
                    settle_dt=T / 4,
                    settle_method="gear",
                    max_order=3,
                )
            ),
        )
    )
    amp_err = abs(
        _fitted_amplitude(
            phased.differential("lc1", "lc2"), 0.6 * t_fault, t_fault, f0
        ) / amp_ref - 1.0
    )
    freq_ref = oscillation_frequency(
        fine.differential("lc1", "lc2").window(0.6 * t_fault, t_fault)
    )
    freq_phased = oscillation_frequency(
        phased.differential("lc1", "lc2").window(0.6 * t_fault, t_fault)
    )
    freq_err = abs(freq_phased / freq_ref - 1.0)
    assert amp_err < ADAPTIVE_ERROR_LIMIT, f"phased amp error {amp_err:.2%}"
    assert freq_err < ADAPTIVE_ERROR_LIMIT, f"phased freq error {freq_err:.2%}"
    assert phased.stats["phase_switches"] == 1, (
        f"expected one live phase switch, got {phased.stats['phase_switches']}"
    )
    step_ratio = trap.stats["accepted_steps"] / phased.stats["accepted_steps"]
    # Post-fault accepted steps: one record per accepted step, so the
    # record timestamps partition deterministically at the fault.
    settle_trap = int(np.sum(trap.t > t_fault))
    settle_phased = int(np.sum(phased.t > t_fault))
    settle_step_ratio = settle_trap / settle_phased
    assert settle_step_ratio >= 1.5, (
        "phase schedule must cut settle-phase accepted steps >= 1.5x, "
        f"got {settle_step_ratio:.2f}x"
    )
    return {
        "workload": f"supply-loss multi-rate (lte_reltol 1e-6), {cycles} cycles: "
        "trap carrier then Gear/BDF3 settle via live phase switch",
        "baseline": "adaptive trapezoidal whole-run, identical tolerances "
        "(live, same machine)",
        "cycles": cycles,
        "seed_seconds": trap_seconds,
        "optimized_seconds": phased_seconds,
        "speedup": trap_seconds / phased_seconds,
        "steps_trap": trap.stats["accepted_steps"],
        "steps_phased": phased.stats["accepted_steps"],
        "optimized_steps": phased.stats["accepted_steps"],
        "step_ratio": step_ratio,
        "settle_steps_trap": settle_trap,
        "settle_steps_phased": settle_phased,
        "settle_step_ratio": settle_step_ratio,
        "phase_switches": phased.stats["phase_switches"],
        "amplitude_error": amp_err,
        "frequency_error": freq_err,
    }


# -- Monte-Carlo startup campaign -------------------------------------------


#: Carrier frequency of the mc_startup workloads — circuit and grid
#: derive from this one constant so they cannot desynchronize.
_MC_F0 = 4e6


def _mc_circuit(profile: MismatchProfile):
    """The mc_startup netlist for one mismatch draw (gm / Q spread).

    One recipe shared by the per-sample, seed-engine, and lockstep
    campaign benches, so all three measure the same workload.
    """
    gm_scale = 1.0 + profile.gm_stage_errors[0]
    q_scale = 1.0 + profile.prescale_errors[0]
    tank = RLCTank.from_frequency_and_q(_MC_F0, 15.0 * q_scale, 1e-6)
    limiter = TanhLimiter(gm=6e-3 * gm_scale, i_max=2e-3)
    return OscillatorNetlist(tank, vref=2.5).build(limiter)


def _mc_options(cycles: int = 20, record_all: bool = False) -> TransientOptions:
    return TransientOptions(
        t_stop=cycles / _MC_F0,
        dt=1.0 / (_MC_F0 * 40),
        method="trap",
        use_dc_operating_point=False,
        record_nodes=None if record_all else ("lc1", "lc2"),
    )


def _mc_startup_metric(profile: MismatchProfile, engine):
    """``(startup amplitude, stats)`` of one mismatch instance."""
    circuit = _mc_circuit(profile)
    options = _mc_options(record_all=engine is run_transient_reference)
    result = engine(circuit, options)
    diff = result.waveform("lc1").y - result.waveform("lc2").y
    return float(np.max(np.abs(diff))), result.stats


def _run_mc_campaign(engine, n_samples: int):
    profiles = [MismatchProfile.sample(seed=1000 + i) for i in range(n_samples)]
    outputs = run_batch(lambda p: _mc_startup_metric(p, engine), profiles)
    values = [value for value, _stats in outputs]
    newton = sum(stats.get("newton_iterations", 0) for _value, stats in outputs)
    return values, newton


def bench_mc_startup(n_samples: int = 16) -> dict:
    seed_seconds, (seed_vals, _) = _timed(
        lambda: _run_mc_campaign(run_transient_reference, n_samples)
    )
    opt_seconds, (opt_vals, opt_newton) = _timed(
        lambda: _run_mc_campaign(run_transient, n_samples)
    )
    np.testing.assert_allclose(opt_vals, seed_vals, rtol=1e-6)
    return {
        "workload": f"MC startup campaign, {n_samples} mismatch samples, "
        "20 carrier cycles each",
        "baseline": "seed engine (live, same machine)",
        "n_samples": n_samples,
        "seed_seconds": seed_seconds,
        "optimized_seconds": opt_seconds,
        "speedup": seed_seconds / opt_seconds,
        "optimized_newton_iterations": opt_newton,
    }


# -- Monte-Carlo startup campaign, lockstep batched --------------------------


def _amplitudes(results) -> list:
    return [
        float(np.max(np.abs(r.waveform("lc1").y - r.waveform("lc2").y)))
        for r in results
    ]


def bench_mc_startup_batched(n_samples: int = 64, cycles: int = 20) -> dict:
    profiles = MismatchProfile.sample_many(n_samples, base_seed=2000).profiles()
    options = _mc_options(cycles)

    def per_sample():
        return [run_transient(_mc_circuit(p), options) for p in profiles]

    def batched():
        return run_transient_batched(
            [_mc_circuit(p) for p in profiles], options
        )

    seed_seconds, per_results = _timed(per_sample)
    opt_seconds, batch_results = _timed(batched)
    np.testing.assert_allclose(
        _amplitudes(batch_results), _amplitudes(per_results), rtol=1e-9
    )
    newton = sum(r.stats["newton_iterations"] for r in batch_results)
    newton_ref = sum(r.stats["newton_iterations"] for r in per_results)
    return {
        "workload": f"lockstep MC startup campaign, {n_samples} mismatch "
        f"samples, {cycles} carrier cycles each",
        "baseline": "per-sample optimized engine (live, same machine)",
        "n_samples": n_samples,
        "cycles": cycles,
        "seed_seconds": seed_seconds,
        "optimized_seconds": opt_seconds,
        "speedup": seed_seconds / opt_seconds,
        # The mask-driven lockstep Newton must do exactly the per-
        # sample iteration work; both are recorded so the gate catches
        # an engine change that quietly costs iterations.
        "optimized_newton_iterations": newton,
        "per_sample_newton_iterations": newton_ref,
    }


# -- Monte-Carlo startup campaign, sharded across cores ----------------------


def _mc_sharded_build(index: int):
    """Module-level (picklable) build for the sharded campaign bench."""
    return _mc_circuit(MismatchProfile.sample(seed=2000 + index))


def bench_mc_startup_sharded(n_samples: int = 64, cycles: int = 20) -> dict:
    """Sharded campaign vs the single lockstep batch it decomposes.

    The contract has two halves, both asserted live: the shard merge
    is *bit-identical* to the unsharded vectorized run (every
    per-sample solve is independent of batch membership), and the
    wall clock scales with cores — >= 1.5x on multi-core hosts, and
    within 10% of the single batch on one core, where the shards
    degrade to a sequential in-process loop with no pool or shared
    memory.  The effective worker/shard counts are stamped into the
    entry: a recorded speedup is meaningless without its hardware
    context, so it should never be compared across machines blind.
    """
    options = _mc_options(cycles)
    tasks = list(range(n_samples))

    def campaign(mode):
        return run_transient_campaign(
            tasks, _mc_sharded_build, options, BatchOptions(batch_mode=mode)
        )

    seed_seconds, vec_results = _timed(lambda: campaign("vectorized"))
    opt_seconds, shard_results = _timed(lambda: campaign("sharded"))
    for s, (vec, shard) in enumerate(zip(vec_results, shard_results)):
        assert np.array_equal(vec.x, shard.x), (
            f"sharded merge diverged from the single batch on sample {s}"
        )
    workers = int(shard_results[0].stats["shard_workers"])
    n_shards = int(shard_results[0].stats["n_shards"])
    speedup = seed_seconds / opt_seconds
    if workers > 1:
        assert speedup >= 1.5, (
            f"sharded campaign on {workers} workers must beat the single "
            f"batch >= 1.5x, got {speedup:.2f}x"
        )
    else:
        assert speedup >= 0.9, (
            f"sequential shard degradation must stay within 10% of the "
            f"single batch, got {speedup:.2f}x"
        )
    newton = sum(r.stats["newton_iterations"] for r in shard_results)
    newton_ref = sum(r.stats["newton_iterations"] for r in vec_results)
    assert newton == newton_ref, "sharding changed the Newton work"
    return {
        "workload": f"sharded MC startup campaign, {n_samples} mismatch "
        f"samples, {cycles} carrier cycles each",
        "baseline": "single lockstep batch (vectorized campaign, live, "
        "same machine)",
        "n_samples": n_samples,
        "cycles": cycles,
        "effective_workers": workers,
        "effective_shards": n_shards,
        "seed_seconds": seed_seconds,
        "optimized_seconds": opt_seconds,
        "speedup": speedup,
        "optimized_newton_iterations": newton,
    }


# -- distributed-coil ladder: dense vs sparse backend ------------------------


def bench_ladder_dense_vs_sparse(segments: int = 250, cycles: int = 40) -> dict:
    """The sparse backend's raison d'être, measured honestly.

    One linear N-segment coil ladder, one fixed grid, identical RHS
    work per step — the dense and sparse runs differ *only* in the
    linear algebra, so the speedup is the backend's own.  The
    waveforms must agree at rtol 1e-9 (same equations, different
    factorization), and the deterministic counters (steps, Newton
    solves — zero for a linear netlist) gate engine regressions.
    """
    coil = DistributedCoil(TANK, n_segments=segments)

    def options(backend):
        return TransientOptions(
            t_stop=cycles / TANK.frequency,
            dt=1.0 / (TANK.frequency * 40),
            use_dc_operating_point=False,
            record_nodes=("lc1", "lc2"),
            backend=backend,
        )

    dense_seconds, dense = _timed(
        lambda: run_transient(coil.build_circuit(), options("dense"))
    )
    sparse_seconds, sparse = _timed(
        lambda: run_transient(coil.build_circuit(), options("sparse"))
    )
    scale = float(np.abs(dense.x).max())
    np.testing.assert_allclose(
        sparse.x, dense.x, rtol=1e-9, atol=1e-9 * scale,
        err_msg="sparse backend diverged from dense on the ladder",
    )
    assert sparse.stats["backend"] == "sparse"
    assert dense.stats["backend"] == "dense"
    return {
        "workload": f"distributed-coil ladder, {segments} segments "
        f"({coil.unknown_count} unknowns), {cycles} carrier cycles, "
        "dense vs sparse backend",
        "baseline": "dense backend, identical netlist/grid (live, same machine)",
        "segments": segments,
        "cycles": cycles,
        "unknowns": coil.unknown_count,
        "seed_seconds": dense_seconds,
        "optimized_seconds": sparse_seconds,
        "speedup": dense_seconds / sparse_seconds,
        "optimized_newton_iterations": sparse.stats["newton_iterations"],
        "optimized_steps": sparse.stats["steps"],
    }


# -- coil mesh: sparse direct vs Krylov stale-LU backend ---------------------


#: The mesh bench's tank (a physically-motivated 4 MHz-class LC cell);
#: the mesh replicates it per node, so the netlist is dominated by
#: reactive companion stamps — the workload the dt-cache exists for.
MESH_TANK = RLCTank(inductance=10e-6, capacitance=1e-9, series_resistance=2.0)

#: Below this the dense/sparse direct paths win and the Krylov gates
#: are informational only (mirrors ``KRYLOV_AUTO_THRESHOLD``'s intent:
#: iterative machinery pays off where factorization dominates).
KRYLOV_GATE_UNKNOWNS = 10_000


def bench_coil_mesh_krylov(nx: int = 50, periods: int = 8) -> dict:
    """Krylov stale-LU pool vs per-dt sparse refactorization, measured
    honestly on the first 10k-unknown workload in the repo.

    One mesh, one pulse drive, one adaptive grid — the runs differ
    only in the linear-algebra backend.  The asserted asset is
    deterministic: the anchor pool must cut LU factorizations >= 2x
    (in practice ~7x: the pool refreshes stay flat while sparse
    refactors every dt-cache entry build and rebuild).  Wall-clock
    speedup is recorded (>= 2x at the default size on an idle
    machine) but only gated as a loose 1.3x floor — shared-runner
    noise must not fail the gate that the counters already enforce.
    """
    mesh = CoilMesh(tank=MESH_TANK, nx=nx, ny=nx)
    f0 = mesh.tank.frequency
    t_stop = periods * 8.0 / f0

    def run(backend):
        return run_transient(
            mesh.build_circuit(drive="pulse"),
            TransientOptions(
                t_stop=t_stop,
                dt=0.05 / f0,
                step_control="adaptive",
                backend=backend,
            ),
        )

    # Best-of-2: each run is seconds long, so 5 repeats would dominate
    # the whole suite for noise margin the counter gates don't need.
    sparse_seconds, sparse = _timed(lambda: run("sparse"), repeats=2)
    krylov_seconds, krylov = _timed(lambda: run("krylov"), repeats=2)

    # Waveform equivalence at rtol 1e-6 on shared time points.  The
    # adaptive controllers almost always walk identical grids, but an
    # iterative solve may legitimately flip one accept decision; shared
    # points still compare exactly (the quantized dt ladder makes
    # accepted times exactly representable).
    scale = max(float(np.abs(sparse.x).max()), 1e-12)
    _, i_s, i_k = np.intersect1d(
        np.round(sparse.t * f0, 9),
        np.round(krylov.t * f0, 9),
        return_indices=True,
    )
    assert i_s.size >= 0.5 * sparse.t.size, (
        "krylov and sparse adaptive grids share too few points"
    )
    np.testing.assert_allclose(
        krylov.x[i_k], sparse.x[i_s], rtol=1e-6, atol=1e-6 * scale,
        err_msg="krylov backend diverged from sparse on the coil mesh",
    )
    assert krylov.stats["backend"] == "krylov"

    lu_sparse = sparse.stats["lu_refactorizations"]
    lu_krylov = krylov.stats["lu_refactorizations"]
    speedup = sparse_seconds / krylov_seconds
    if mesh.unknown_count >= KRYLOV_GATE_UNKNOWNS:
        assert lu_krylov * 2 <= lu_sparse, (
            f"stale-LU pool must halve factorizations at >= "
            f"{KRYLOV_GATE_UNKNOWNS} unknowns: {lu_krylov} vs "
            f"{lu_sparse} sparse"
        )
        assert speedup >= 1.3, (
            f"krylov wall floor: expected >= 1.3x over sparse at "
            f"{mesh.unknown_count} unknowns, got {speedup:.2f}x"
        )
    counters = krylov.stats["krylov"]
    return {
        "workload": f"{nx}x{nx} sensing-coil mesh "
        f"({mesh.unknown_count} unknowns), pulse drive, {periods} "
        "periods adaptive, sparse direct vs Krylov stale-LU pool",
        "baseline": "sparse backend, identical netlist/grid (live, "
        "same machine)",
        "nx": nx,
        "periods": periods,
        "unknowns": mesh.unknown_count,
        # Iteration counts ride scipy's GMRES internals, so the stamp
        # records which scipy produced them.
        "scipy": SCIPY_VERSION,
        "seed_seconds": sparse_seconds,
        "optimized_seconds": krylov_seconds,
        "speedup": speedup,
        "seed_lu_refactorizations": lu_sparse,
        "optimized_lu_refactorizations": lu_krylov,
        "optimized_newton_iterations": krylov.stats["newton_iterations"],
        "optimized_steps": krylov.stats["steps"],
        "optimized_krylov_iterations": counters["iterations"],
        "krylov_solves": counters["solves"],
        "krylov_refreshes": counters["refreshes"],
        "krylov_fallbacks": counters["fallbacks"],
    }


# -- FMEA fault coverage -----------------------------------------------------


def bench_fault_coverage() -> dict:
    def campaign():
        result = FaultCampaign(
            config_factory=standard_config, injection_time=0.02, t_stop=0.04
        ).run()
        assert result.coverage == 1.0
        assert FailureKind.MISSING_OSCILLATION in result.result_for(
            "open-coil"
        ).detections
        return result

    seconds, _ = _timed(campaign)
    return {
        "workload": "sec7 FMEA campaign (behavioural model, full catalog)",
        "baseline": "same code path (campaign core is not MNA-based)",
        "seed_seconds": seconds,
        "optimized_seconds": seconds,
        "speedup": 1.0,
    }


# -- harness ----------------------------------------------------------------


def run_benches(
    cycles: int,
    samples: int,
    supply_cycles: int,
    batched_samples: int,
    ladder_segments: int,
    mesh_nx: int,
) -> dict:
    benches = {
        "fig16_startup": bench_fig16_startup(cycles),
        "fig16_startup_adaptive": bench_fig16_adaptive(cycles),
        "supply_loss_adaptive": bench_supply_loss_adaptive(supply_cycles),
        "supply_loss_gear": bench_supply_loss_gear(supply_cycles),
        "fig16_startup_envelope": bench_fig16_startup_envelope(supply_cycles),
        "supply_loss_envelope": bench_supply_loss_envelope(supply_cycles),
        "mc_startup": bench_mc_startup(samples),
        "mc_startup_batched": bench_mc_startup_batched(batched_samples),
        "mc_startup_sharded": bench_mc_startup_sharded(batched_samples),
        "fault_coverage": bench_fault_coverage(),
    }
    if SCIPY_VERSION is not None:
        benches["ladder_transient_dense_vs_sparse"] = (
            bench_ladder_dense_vs_sparse(ladder_segments)
        )
        benches["coil_mesh_krylov"] = bench_coil_mesh_krylov(mesh_nx)
    # Every entry carries its effective parallelism so recorded wall
    # numbers are never read without their hardware context; only the
    # sharded campaign uses more than one worker today.
    for bench in benches.values():
        bench.setdefault("effective_workers", 1)
        bench.setdefault("effective_shards", 1)
    return benches


#: Deterministic gate metrics: ratios where higher is better (gated
#: with a floor) and work counters where higher is worse (gated with
#: a ceiling).  These move when the engine's algorithmic efficiency
#: changes and are immune to machine load; wall-clock speedup is only
#: a loose catastrophic floor on every workload.
_RATIO_METRICS = (
    "newton_solve_ratio",
    "step_ratio",
    "resolved_cycle_ratio",
    "settle_step_ratio",
)
_WORK_METRICS = (
    "optimized_newton_iterations",
    "optimized_steps",
    "optimized_lu_refactorizations",
    "optimized_krylov_iterations",
)
_WALL_SLACK_FACTOR = 2.5


def check_against_baseline(baseline: dict, tolerance: float) -> int:
    """Rerun the baseline's workloads and flag efficiency regressions.

    Returns the number of failures (0 = gate passes).  Every workload
    gates its *deterministic* counters (Newton solves, step ratios vs
    the golden run) at ``tolerance``; wall-clock speedups get
    ``_WALL_SLACK_FACTOR`` times the slack, enough to ride out shared
    -machine noise while still catching an order-of-magnitude loss.
    Adaptive accuracy bounds are enforced unconditionally inside the
    benches themselves.
    """
    recorded = baseline["benches"]
    cycles = recorded.get("fig16_startup", {}).get("cycles", 80)
    samples = recorded.get("mc_startup", {}).get("n_samples", 16)
    supply_cycles = recorded.get("supply_loss_adaptive", {}).get("cycles", 400)
    batched_samples = recorded.get("mc_startup_batched", {}).get("n_samples", 64)
    ladder_segments = recorded.get("ladder_transient_dense_vs_sparse", {}).get(
        "segments", 250
    )
    mesh_nx = recorded.get("coil_mesh_krylov", {}).get("nx", 50)
    fresh = run_benches(
        cycles, samples, supply_cycles, batched_samples, ladder_segments,
        mesh_nx,
    )

    failures = 0
    for name, old in recorded.items():
        new = fresh.get(name)
        if new is None or "speedup" not in old:
            continue
        shared = lambda keys: [k for k in keys if k in old and k in new]
        status = "ok"

        def fail(key):
            nonlocal status, failures
            if status == "ok":
                failures += 1
                status = f"REGRESSED ({key} {old[key]:.3g} -> {new[key]:.3g})"

        for key in shared(_RATIO_METRICS):
            if new[key] < old[key] * (1.0 - tolerance):
                fail(key)
        for key in shared(_WORK_METRICS):
            if new[key] > old[key] * (1.0 + tolerance):
                fail(key)
        # Clamp so the wall floor never collapses to zero: even with a
        # generous --tolerance, an order-of-magnitude wall-clock loss
        # with unchanged counters (e.g. a slow solve) must still fail.
        wall_floor = max(0.05, 1.0 - _WALL_SLACK_FACTOR * tolerance)
        if new["speedup"] < old["speedup"] * wall_floor:
            fail("speedup")

        deterministic = shared(_RATIO_METRICS) + shared(_WORK_METRICS)
        gate_key = deterministic[0] if deterministic else "speedup"
        print(
            f"{name:24s} {gate_key:28s} {old[gate_key]:10.4g} -> "
            f"{new[gate_key]:10.4g}  wall {old['speedup']:5.2f}x -> "
            f"{new['speedup']:5.2f}x  {status}"
        )
    return failures


def check_rescue_overhead(cycles: int = 20) -> int:
    """Gate the fault-tolerance layer's zero-overhead guarantee.

    Healthy workloads must be *bit-identical* with the rescue ladder,
    budgets and quarantine armed: the fault-tolerance code may only
    engage after a ConvergenceError, never add Newton work to a run
    that converges.  Runs live (no baseline needed): the Fig 16
    startup on both grids, per-sample and batched, nominal vs armed,
    comparing the deterministic work counters and the waveforms
    themselves.  Returns the number of failures (0 = gate passes).
    """
    failures = 0
    armed_fields = dict(
        rescue=True,
        quarantine=True,
        max_steps=10**9,
        max_wall_time=3600.0,
    )
    netlist = OscillatorNetlist(TANK, vref=2.5)
    for step_control in ("fixed", "adaptive"):
        options = dataclasses.replace(
            _startup_options(cycles), step_control=step_control
        )
        armed = dataclasses.replace(options, **armed_fields)
        plain = run_transient(netlist.build(LIMITER), options)
        guarded = run_transient(netlist.build(LIMITER), armed)
        same = (
            plain.stats["newton_iterations"] == guarded.stats["newton_iterations"]
            and plain.stats["steps"] == guarded.stats["steps"]
            and np.array_equal(plain.x, guarded.x)
        )
        label = f"rescue_overhead_{step_control}"
        if not same:
            failures += 1
            print(
                f"{label:24s} FAIL: armed run differs "
                f"(newton {plain.stats['newton_iterations']} -> "
                f"{guarded.stats['newton_iterations']}, steps "
                f"{plain.stats['steps']} -> {guarded.stats['steps']})"
            )
        else:
            print(
                f"{label:24s} newton_iterations "
                f"{plain.stats['newton_iterations']:>6} unchanged, "
                "waveform bit-identical  ok"
            )
    # Batched lockstep engine with quarantine armed.
    circuits_plain = [netlist.build(LIMITER) for _ in range(4)]
    circuits_armed = [netlist.build(LIMITER) for _ in range(4)]
    options = _startup_options(cycles)
    armed = dataclasses.replace(options, **armed_fields)
    plain = run_transient_batched(circuits_plain, options)
    guarded = run_transient_batched(circuits_armed, armed)
    same = all(
        a.stats["newton_iterations"] == b.stats["newton_iterations"]
        and np.array_equal(a.x, b.x)
        for a, b in zip(plain, guarded)
    )
    if not same:
        failures += 1
        print("rescue_overhead_batched  FAIL: armed lockstep run differs")
    else:
        print(
            "rescue_overhead_batched  per-sample counters unchanged, "
            "waveforms bit-identical  ok"
        )
    return failures


def check_health_overhead(cycles: int = 20) -> int:
    """Gate the health layer's bit-identity + bounded-overhead guarantee.

    Healthy workloads must be *bit-identical* with preflight lint,
    NaN/conditioning guards and post-step certification armed: the
    health layer may only *read* (residual recompute, condition
    estimate against the cached LU), never perturb the iterate or the
    step sequence.  Certification does extra arithmetic per accepted
    step, so armed wall clock gets a generous fixed budget
    (``_HEALTH_WALL_FACTOR`` x plain + slack) — enough headroom for
    shared-machine noise, tight enough to catch an accidental extra
    factorization per step.  A healthy startup must also certify every
    step and file zero health reports.  Returns the number of failures
    (0 = gate passes).
    """
    failures = 0
    armed_fields = dict(guards=True, certify=True, preflight="warn")
    netlist = OscillatorNetlist(TANK, vref=2.5)
    for step_control in ("fixed", "adaptive"):
        options = dataclasses.replace(
            _startup_options(cycles), step_control=step_control
        )
        armed = dataclasses.replace(options, **armed_fields)
        t0 = time.perf_counter()
        plain = run_transient(netlist.build(LIMITER), options)
        t_plain = time.perf_counter() - t0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            t0 = time.perf_counter()
            guarded = run_transient(netlist.build(LIMITER), armed)
        t_armed = time.perf_counter() - t0
        label = f"health_overhead_{step_control}"
        identical = (
            plain.stats["newton_iterations"] == guarded.stats["newton_iterations"]
            and plain.stats["steps"] == guarded.stats["steps"]
            and np.array_equal(plain.x, guarded.x)
        )
        clean = (
            not guarded.stats.get("health")
            and guarded.stats.get("certified_steps", 0) > 0
        )
        budget = _HEALTH_WALL_FACTOR * t_plain + _HEALTH_WALL_SLACK
        if not identical:
            failures += 1
            print(f"{label:24s} FAIL: armed run differs from unarmed")
        elif not clean:
            failures += 1
            print(
                f"{label:24s} FAIL: healthy run filed "
                f"{len(guarded.stats.get('health', []))} health report(s), "
                f"certified {guarded.stats.get('certified_steps', 0)} steps"
            )
        elif t_armed > budget:
            failures += 1
            print(
                f"{label:24s} FAIL: armed wall {t_armed:.3f}s over budget "
                f"{budget:.3f}s (plain {t_plain:.3f}s)"
            )
        else:
            print(
                f"{label:24s} bit-identical, "
                f"{guarded.stats['certified_steps']:>6} steps certified, "
                f"wall {t_armed / max(t_plain, 1e-9):4.2f}x  ok"
            )
    # Batched lockstep engine, armed vs unarmed.
    circuits_plain = [netlist.build(LIMITER) for _ in range(4)]
    circuits_armed = [netlist.build(LIMITER) for _ in range(4)]
    options = _startup_options(cycles)
    armed = dataclasses.replace(options, **armed_fields)
    plain = run_transient_batched(circuits_plain, options)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        guarded = run_transient_batched(circuits_armed, armed)
    same = all(
        a.stats["newton_iterations"] == b.stats["newton_iterations"]
        and np.array_equal(a.x, b.x)
        and not b.stats.get("health")
        for a, b in zip(plain, guarded)
    )
    if not same:
        failures += 1
        print("health_overhead_batched  FAIL: armed lockstep run differs")
    else:
        print(
            "health_overhead_batched  per-sample counters unchanged, "
            "waveforms bit-identical, zero reports  ok"
        )
    return failures


def check_envelope_identity(cycles: int = 20) -> int:
    """Gate the envelope engine's ``skip="off"`` bit-identity contract.

    With skipping disabled the envelope front-end must delegate to
    the plain engine and only *annotate* the result: identical time
    grid, identical records, identical Newton-solve count, with the
    provenance metadata marking every record as resolved.  Runs live
    (no baseline needed) on the Fig 16 startup.  Returns the number
    of failures (0 = gate passes).
    """
    failures = 0
    options = dataclasses.replace(
        _startup_options(cycles), record_nodes=("lc1", "lc2")
    )
    netlist = OscillatorNetlist(TANK, vref=2.5)
    plain = run_transient(netlist.build(LIMITER), options)
    off = run_transient_envelope(
        netlist.build(LIMITER), options, _envelope_recipe(skip="off")
    )
    identical = (
        plain.stats["newton_iterations"] == off.stats["newton_iterations"]
        and np.array_equal(plain.t, off.t)
        and np.array_equal(plain.x, off.x)
    )
    e = off.stats["envelope"]
    annotated = e["skip"] == "off" and all(
        p == "resolved" for p in e["provenance"]
    )
    if not identical:
        failures += 1
        print(
            "envelope_identity        FAIL: skip=off differs from the plain "
            f"engine (newton {plain.stats['newton_iterations']} -> "
            f"{off.stats['newton_iterations']})"
        )
    elif not annotated:
        failures += 1
        print(
            "envelope_identity        FAIL: skip=off provenance is not "
            "all-resolved"
        )
    else:
        print(
            "envelope_identity        skip=off bit-identical, "
            f"{len(off.t):>6} records all resolved  ok"
        )
    return failures


#: Armed-run wall budget: certification recomputes the step residual
#: (one dense mat-vec + device re-linearization per accepted step), so
#: some overhead is the *point*; 3x plus absolute slack catches an
#: accidental extra factorization without tripping on machine noise.
_HEALTH_WALL_FACTOR = 3.0
_HEALTH_WALL_SLACK = 0.5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_transient.json",
        help="output JSON path (default: repo root BENCH_transient.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads (smoke-testing the harness itself)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="regression gate: rerun the committed baseline's workloads "
        "and fail on any speedup regression beyond --tolerance",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_transient.json",
        help="baseline JSON for --check (default: committed bench file)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional speedup regression in --check mode",
    )
    args = parser.parse_args(argv)

    if args.check:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; run without --check first")
            return 2
        baseline = json.loads(args.baseline.read_text())
        failures = check_against_baseline(baseline, args.tolerance)
        overhead_failures = check_rescue_overhead()
        health_failures = check_health_overhead()
        envelope_failures = check_envelope_identity()
        if failures or overhead_failures or health_failures or envelope_failures:
            if failures:
                print(f"FAIL: {failures} workload(s) regressed > "
                      f"{args.tolerance:.0%} vs {args.baseline}")
            if overhead_failures:
                print(f"FAIL: {overhead_failures} healthy workload(s) "
                      "changed with the rescue ladder armed")
            if health_failures:
                print(f"FAIL: {health_failures} healthy workload(s) "
                      "changed or overran with the health layer armed")
            if envelope_failures:
                print("FAIL: envelope skip=off run is not bit-identical "
                      "to the plain engine")
            return 1
        print(f"bench gate ok (within {args.tolerance:.0%} of {args.baseline})")
        return 0

    cycles = 20 if args.quick else 80
    samples = 4 if args.quick else 16
    supply_cycles = 120 if args.quick else 400
    batched_samples = 8 if args.quick else 64
    ladder_segments = 80 if args.quick else 250
    mesh_nx = 24 if args.quick else 50
    benches = run_benches(
        cycles, samples, supply_cycles, batched_samples, ladder_segments,
        mesh_nx,
    )
    payload = {
        "generated_by": "benchmarks/run_perf.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "quick": bool(args.quick),
        # Environment stamp: speedups are hardware-independent, but
        # comparing raw seconds across machines needs this context.
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "scipy": SCIPY_VERSION,
            "cpu_count": os.cpu_count(),
        },
        "benches": benches,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    for name, bench in benches.items():
        line = (
            f"{name:24s} seed {bench['seed_seconds']:.3f}s -> optimized "
            f"{bench['optimized_seconds']:.3f}s  ({bench['speedup']:.2f}x)"
        )
        if "amplitude_error" in bench:
            line += (
                f"  [amp err {bench['amplitude_error']:.2%}, "
                f"freq err {bench['frequency_error']:.2%}]"
            )
        print(line)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
