"""Performance harness for the transient engine and its campaigns.

Times the three workloads the incremental-stamping engine was built
for and writes ``BENCH_transient.json`` (repo root by default) so
future PRs have a perf trajectory to regress against:

* ``fig16_startup`` — the Fig 16 carrier-resolution MNA startup (80
  carrier cycles, trapezoidal).  Baseline: the preserved seed engine
  (:func:`repro.circuits.reference.run_transient_reference`) run live
  on the same machine, so speedups are hardware-independent.
* ``mc_startup`` — a Monte-Carlo campaign of short carrier-resolution
  startups over mismatch draws (driver gm / tank Q spread), routed
  through the shared campaign runner.  Baseline: the same campaign on
  the seed engine.
* ``fault_coverage`` — the §7 FMEA campaign (behavioural system
  model).  Its simulation core is not MNA-based, so the recorded
  baseline is the same code path; the entry tracks absolute seconds.

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py [--out PATH] [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import numpy as np

from repro.campaigns import run_batch
from repro.circuits import TransientOptions, run_transient, run_transient_reference
from repro.core import FailureKind, OscillatorNetlist
from repro.envelope import RLCTank, TanhLimiter
from repro.faults import FaultCampaign
from repro.mc.mismatch import MismatchProfile

from common import standard_config

#: Fig 16 bench tank and driver (mirrors bench_fig16_startup.py).
TANK = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)
LIMITER = TanhLimiter(gm=6e-3, i_max=2e-3)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


# -- fig16 startup -----------------------------------------------------------


def _startup_options(cycles: int) -> TransientOptions:
    return TransientOptions(
        t_stop=cycles / TANK.frequency,
        dt=1.0 / (TANK.frequency * 40),
        method="trap",
        use_dc_operating_point=False,
    )


def _run_startup(engine, cycles: int) -> float:
    netlist = OscillatorNetlist(TANK, vref=2.5)
    circuit = netlist.build(LIMITER)
    result = engine(circuit, _startup_options(cycles))
    diff = result.waveform("lc1").y - result.waveform("lc2").y
    return float(np.max(np.abs(diff[-80:])))


def bench_fig16_startup(cycles: int = 80) -> dict:
    seed_seconds, seed_amp = _timed(
        lambda: _run_startup(run_transient_reference, cycles)
    )
    opt_seconds, opt_amp = _timed(lambda: _run_startup(run_transient, cycles))
    assert abs(seed_amp - opt_amp) < 1e-6 * max(seed_amp, 1.0), (
        "engines disagree on the startup amplitude"
    )
    return {
        "workload": f"carrier-resolution startup, {cycles} cycles, trap",
        "baseline": "seed engine (live, same machine)",
        "seed_seconds": seed_seconds,
        "optimized_seconds": opt_seconds,
        "speedup": seed_seconds / opt_seconds,
    }


# -- Monte-Carlo startup campaign -------------------------------------------


def _mc_startup_metric(profile: MismatchProfile, engine) -> float:
    """Startup amplitude of one mismatch instance (short run)."""
    gm_scale = 1.0 + profile.gm_stage_errors[0]
    q_scale = 1.0 + profile.prescale_errors[0]
    tank = RLCTank.from_frequency_and_q(4e6, 15.0 * q_scale, 1e-6)
    limiter = TanhLimiter(gm=6e-3 * gm_scale, i_max=2e-3)
    netlist = OscillatorNetlist(tank, vref=2.5)
    circuit = netlist.build(limiter)
    options = TransientOptions(
        t_stop=20 / tank.frequency,
        dt=1.0 / (tank.frequency * 40),
        method="trap",
        use_dc_operating_point=False,
        record_nodes=None if engine is run_transient_reference else ("lc1", "lc2"),
    )
    result = engine(circuit, options)
    diff = result.waveform("lc1").y - result.waveform("lc2").y
    return float(np.max(np.abs(diff)))


def _run_mc_campaign(engine, n_samples: int) -> list:
    profiles = [MismatchProfile.sample(seed=1000 + i) for i in range(n_samples)]
    return run_batch(lambda p: _mc_startup_metric(p, engine), profiles)


def bench_mc_startup(n_samples: int = 16) -> dict:
    seed_seconds, seed_vals = _timed(
        lambda: _run_mc_campaign(run_transient_reference, n_samples)
    )
    opt_seconds, opt_vals = _timed(
        lambda: _run_mc_campaign(run_transient, n_samples)
    )
    np.testing.assert_allclose(opt_vals, seed_vals, rtol=1e-6)
    return {
        "workload": f"MC startup campaign, {n_samples} mismatch samples, "
        "20 carrier cycles each",
        "baseline": "seed engine (live, same machine)",
        "seed_seconds": seed_seconds,
        "optimized_seconds": opt_seconds,
        "speedup": seed_seconds / opt_seconds,
    }


# -- FMEA fault coverage -----------------------------------------------------


def bench_fault_coverage() -> dict:
    def campaign():
        result = FaultCampaign(
            config_factory=standard_config, injection_time=0.02, t_stop=0.04
        ).run()
        assert result.coverage == 1.0
        assert FailureKind.MISSING_OSCILLATION in result.result_for(
            "open-coil"
        ).detections
        return result

    seconds, _ = _timed(campaign)
    return {
        "workload": "sec7 FMEA campaign (behavioural model, full catalog)",
        "baseline": "same code path (campaign core is not MNA-based)",
        "seed_seconds": seconds,
        "optimized_seconds": seconds,
        "speedup": 1.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_transient.json",
        help="output JSON path (default: repo root BENCH_transient.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads (smoke-testing the harness itself)",
    )
    args = parser.parse_args(argv)

    cycles = 20 if args.quick else 80
    samples = 4 if args.quick else 16
    benches = {
        "fig16_startup": bench_fig16_startup(cycles),
        "mc_startup": bench_mc_startup(samples),
        "fault_coverage": bench_fault_coverage(),
    }
    payload = {
        "generated_by": "benchmarks/run_perf.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "quick": bool(args.quick),
        "benches": benches,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    for name, bench in benches.items():
        print(
            f"{name:16s} seed {bench['seed_seconds']:.3f}s -> optimized "
            f"{bench['optimized_seconds']:.3f}s  ({bench['speedup']:.2f}x)"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
