"""Ablation — output stage topologies Fig 10a vs 10b vs Fig 11 (§8).

Three metrics per topology:

* worst-case loading current of a dead (floating-Vdd) system,
* powered output-low voltage (drive range),
* survival of the live partner in the redundant dual system.
"""

from repro.core import powered_output_low_voltage, run_supply_loss_sweep
from repro.sensor import DualSystemScenario, effective_load_resistance

from common import save_result, standard_config, standard_tank
from repro.analysis import format_si, render_table
from repro.core.oscillator_system import OscillatorConfig


def generate_ablation():
    rows = []
    for topology in ("fig10a", "fig10b", "fig11"):
        sweep = run_supply_loss_sweep(topology, n_points=61)
        # Partner survival checked at a 4 Vpp operating amplitude where
        # diode conduction matters (at 2.7 Vpp even fig10a barely
        # conducts — the paper's amplitude is chosen *under* the diode
        # knee).
        config = OscillatorConfig(tank=standard_tank(), target_peak_amplitude=2.0)
        outcome = DualSystemScenario(
            config=config,
            topology=topology,
            coupling=0.6,
            fault_time=0.02,
            t_stop=0.04,
            sweep=sweep,
        ).run()
        rows.append(
            {
                "topology": topology,
                "max_loading": sweep.max_loading_current(),
                "r_pins": effective_load_resistance(sweep, 2.0),
                "output_low": powered_output_low_voltage(topology),
                "partner_survives": outcome.survived,
            }
        )
    return rows


def test_ablation_output_stage(benchmark):
    rows = benchmark.pedantic(generate_ablation, rounds=1, iterations=1)
    by_name = {r["topology"]: r for r in rows}

    # Fig 10a: loads heavily, full drive range, partner dies.
    assert by_name["fig10a"]["max_loading"] > 10e-3
    assert by_name["fig10a"]["output_low"] < 0.1
    assert not by_name["fig10a"]["partner_survives"]
    # Fig 10b: isolates, but costs ~a PMOS threshold of range.
    assert by_name["fig10b"]["max_loading"] < 1e-3
    assert by_name["fig10b"]["output_low"] > 0.6
    # Fig 11: isolates AND keeps the range — the paper's point.
    assert by_name["fig11"]["max_loading"] < 1.5e-3
    assert by_name["fig11"]["output_low"] < 0.1
    assert by_name["fig11"]["partner_survives"]

    save_result(
        "ablation_output_stage",
        render_table(
            ["topology", "max |I| dead chip", "R at 2 V pk", "output low (powered)", "partner survives"],
            [
                (
                    r["topology"],
                    format_si(r["max_loading"], "A"),
                    format_si(r["r_pins"], "ohm"),
                    f"{r['output_low']:.2f} V",
                    "yes" if r["partner_survives"] else "NO",
                )
                for r in rows
            ],
            title="Ablation §8: output stage topologies (Fig 10a / 10b / Fig 11)",
        ),
    )
