"""Table 1 — coding of the driver control signals.

Regenerates every static column of Table 1 from the control-bus
encoder and checks the rows verbatim against the paper.
"""

from repro.core import table1_rows
from repro.core.control_bus import verify_against_factors

from common import save_result
from repro.analysis import render_table

# The rows of Table 1 as printed in the paper (static columns).
PAPER_ROWS = [
    # seg, prescaler, gm stages, step, min, max, OscD, OscE, OscF template
    (0, 1, 1, 1, 0, 15, "000", "0000", "000B3B2B1B0"),
    (1, 1, 2, 1, 16, 31, "000", "0001", "000B3B2B1B0"),
    (2, 2, 2, 2, 32, 62, "001", "0001", "000B3B2B1B0"),
    (3, 2, 3, 4, 64, 124, "001", "0011", "00B3B2B1B00"),
    (4, 4, 3, 8, 128, 248, "011", "0011", "00B3B2B1B00"),
    (5, 4, 5, 16, 256, 496, "011", "0111", "0B3B2B1B000"),
    (6, 8, 5, 32, 512, 992, "111", "0111", "0B3B2B1B000"),
    (7, 8, 9, 64, 1024, 1984, "111", "1111", "B3B2B1B0000"),
]


def generate_table1():
    return table1_rows()


def test_table1_control_codes(benchmark):
    rows = benchmark(generate_table1)

    assert verify_against_factors()
    assert len(rows) == len(PAPER_ROWS)
    for row, paper in zip(rows, PAPER_ROWS):
        seg, prescale, gm, _step, rmin, rmax, osc_d, osc_e, osc_f = paper
        assert row["segment"] == seg
        assert row["prescale"] == prescale
        assert row["active_gm_stages"] == gm
        assert row["range_min"] == rmin
        assert row["range_max"] == rmax
        assert row["osc_d"] == osc_d
        assert row["osc_e"] == osc_e
        assert row["osc_f_template"] == osc_f

    rendered = render_table(
        ["seg", "step", "min", "max", "prescale", "Gm stages", "OscD", "OscE", "OscF"],
        [
            (
                r["segment"],
                r["step"],
                r["range_min"],
                r["range_max"],
                r["prescale"],
                r["active_gm_stages"],
                r["osc_d"],
                r["osc_e"],
                r["osc_f_template"],
            )
            for r in rows
        ],
        title="Table 1: coding of driver control signals (all rows exact)",
    )
    save_result("table1_control_codes", rendered)
