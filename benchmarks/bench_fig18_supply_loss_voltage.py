"""Fig 18 — voltages on LC1, LC2 and the floating Vdd during the
supply-loss sweep.

Paper shape: LC1/LC2 follow ±V/2 (the dead chip does not clamp them),
and the floating Vdd is pumped toward |V/2| minus a diode drop by the
MP1 bulk diode whenever either pin swings high.
"""

import numpy as np

from repro.core import run_supply_loss_sweep

from common import save_result
from repro.analysis import render_table


def generate_fig18():
    return run_supply_loss_sweep("fig11", v_max=3.0, n_points=121)


def test_fig18_supply_loss_voltage(benchmark):
    result = benchmark.pedantic(generate_fig18, rounds=1, iterations=1)

    # Pins track the drive — no clamping anywhere in ±3 V.
    assert np.allclose(result.v_lc1, result.v_diff / 2, atol=0.06)
    assert np.allclose(result.v_lc2, -result.v_diff / 2, atol=0.06)
    # Vdd pump: near zero at the centre, ~|V/2| - Vdiode at the ends,
    # symmetric (either pin can pump).
    assert abs(result.vdd_at(0.0)) < 0.05
    assert 0.5 < result.vdd_at(3.0) < 1.4
    assert 0.5 < result.vdd_at(-3.0) < 1.4
    assert abs(result.vdd_at(3.0) - result.vdd_at(-3.0)) < 0.1
    # Vdd never exceeds the pin peak (passive pump).
    assert np.all(result.v_vdd <= np.maximum(np.abs(result.v_lc1), np.abs(result.v_lc2)) + 1e-6)

    idx = np.linspace(0, len(result.v_diff) - 1, 13).astype(int)
    rows = [
        (
            f"{result.v_diff[i]:+.2f}",
            f"{result.v_lc1[i]:+.3f}",
            f"{result.v_lc2[i]:+.3f}",
            f"{result.v_vdd[i]:+.3f}",
        )
        for i in idx
    ]
    save_result(
        "fig18_supply_loss_voltage",
        render_table(
            ["V(LC1-LC2)", "LC1 (V)", "LC2 (V)", "Vdd (V)"],
            rows,
            title="Fig 18: voltages on LC1, LC2 and floating Vdd",
        ),
    )
