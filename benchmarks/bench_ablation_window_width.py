"""Ablation — regulation window width vs the maximum DAC step (§4).

Paper design rule: "The window for oscillator amplitude regulation is
made wider than the maximum regulation step (6.25 %). In this way, the
regulation step can never jump over the window and cause regulation
oscillations."  We regulate the same plant with windows narrower and
wider than the step and count code changes in steady state.
"""

from repro.core import ExponentialPWLDAC, RegulationLoop, WindowComparator, design_window

from common import save_result
from repro.analysis import render_table


def run_loop(window, dac, target_current, ticks=300, start_code=105):
    loop = RegulationLoop(comparator=window, initial_code=start_code)
    scale = 1.0 / target_current
    for k in range(ticks):
        loop.tick(k * 1e-3, dac.current(loop.code) * scale)
    tail = loop.history[-50:]
    changes = sum(1 for e in tail if e.code_after != e.code_before)
    return loop, changes


def generate_ablation():
    dac = ExponentialPWLDAC()
    # Target between two codes in a max-step region (6.25 % around
    # code 17) so a window narrower than the step has no resting
    # place — the exact failure mode §4 designs against.
    target = (dac.current(17) * dac.current(18)) ** 0.5
    cases = []
    for label, window in (
        ("2% (narrower than step)", WindowComparator(low=0.99, high=1.01)),
        ("4% (narrower than step)", WindowComparator(low=0.98, high=1.02)),
        ("8.1% (paper: step x 1.3)", design_window(1.0, margin=1.3)),
        ("12.5% (step x 2)", design_window(1.0, margin=2.0)),
    ):
        loop, changes = run_loop(window, dac, target)
        cases.append(
            {
                "label": label,
                "width": window.relative_width,
                "changes_last_50": changes,
                "limit_cycling": loop.is_limit_cycling(),
            }
        )
    return cases


def test_ablation_window_width(benchmark):
    cases = benchmark.pedantic(generate_ablation, rounds=1, iterations=1)

    narrow = [c for c in cases if c["width"] < 0.0625]
    wide = [c for c in cases if c["width"] > 0.0625]
    # Narrow windows limit-cycle; the paper's window does not.
    assert all(c["limit_cycling"] for c in narrow)
    assert all(not c["limit_cycling"] for c in wide)
    assert all(c["changes_last_50"] == 0 for c in wide)
    assert all(c["changes_last_50"] > 25 for c in narrow)

    save_result(
        "ablation_window_width",
        render_table(
            ["window", "rel width", "code changes (last 50 ticks)", "limit cycling"],
            [
                (
                    c["label"],
                    f"{c['width'] * 100:.1f} %",
                    c["changes_last_50"],
                    "YES" if c["limit_cycling"] else "no",
                )
                for c in cases
            ],
            title="Ablation §4: window width vs max DAC step (6.25 %)",
        ),
    )
