"""§9 — supply current vs tank quality over two decades of Q.

Paper: "Current consumption of the driver depends on the quality of
the used LC resonance network and varies from 250 uA to 30 mA" and low
consumption is achieved "mainly for high quality resonance networks".
"""

import numpy as np

from repro.core.oscillator_system import OscillatorConfig, OscillatorDriverSystem
from repro.envelope import RLCTank

from common import save_result
from repro.analysis import format_si, render_table

#: Two decades of quality factor (§1: "can vary two decades").  Q = 8
#: is the poorest tank the driver's gm budget supports at the POR
#: preset (critical gm at Q=8 is ~4.9 mS vs 6 mS available), exactly
#: the kind of floor the paper's "wide range of external LC network
#: parameters" implies.
Q_VALUES = (8.0, 16.0, 40.0, 120.0, 300.0, 800.0)


def generate_sec9():
    rows = []
    for q in Q_VALUES:
        tank = RLCTank.from_frequency_and_q(4e6, q, 1e-6)
        config = OscillatorConfig(tank=tank, target_peak_amplitude=1.0)
        trace = OscillatorDriverSystem(config).run(0.05)
        rows.append(
            {
                "q": q,
                "code": trace.final_code,
                "amplitude": trace.final_amplitude,
                "i_supply": trace.mean_supply_current,
                "failed": trace.any_failure,
            }
        )
    return rows


def test_sec9_current_consumption(benchmark):
    rows = benchmark.pedantic(generate_sec9, rounds=1, iterations=1)

    currents = np.array([r["i_supply"] for r in rows])
    # All Q regulate to the target without failures.
    assert all(not r["failed"] for r in rows)
    assert all(abs(r["amplitude"] - 1.0) < 0.06 for r in rows)
    # Consumption falls monotonically with Q...
    assert np.all(np.diff(currents) < 0)
    # ...and spans the paper's band shape: a few hundred uA for the
    # best tank down from several mA for the poorest, ≈1.5 decades of
    # current over 2 decades of Q.
    assert currents[-1] < 0.5e-3
    assert currents[0] > 3e-3
    assert currents[0] < 35e-3
    assert currents[0] / currents[-1] > 15
    # The driver's absolute capability ceiling matches the paper's
    # 30 mA figure: full code, deep limiting, plus bias.
    from repro.core import driver_limiter_for_code

    ceiling = driver_limiter_for_code(127).mean_abs(100.0) + 130e-6
    assert 20e-3 < ceiling < 35e-3

    save_result(
        "sec9_current_consumption",
        render_table(
            ["Q", "final code", "amplitude (V pk)", "supply current"],
            [
                (
                    f"{r['q']:.0f}",
                    r["code"],
                    f"{r['amplitude']:.3f}",
                    format_si(r["i_supply"], "A"),
                )
                for r in rows
            ],
            title="§9: driver consumption vs tank quality (250 uA .. 30 mA band)",
        ),
    )
