"""§7 — FMEA detection coverage.

Paper: "For every external error condition the application must remain
safe, it means the system has to detect the failure and set outputs
according to it."  The campaign injects every catalog fault into a
settled system and verifies the expected on-chip detection fires (and
that the fault-free baseline raises nothing).
"""

from repro.core import FailureKind
from repro.faults import FaultCampaign, coverage_summary, coverage_table

from common import save_result, standard_config


def generate_sec7():
    campaign = FaultCampaign(
        config_factory=standard_config, injection_time=0.02, t_stop=0.04
    )
    return campaign.run()


def test_sec7_fault_coverage(benchmark):
    result = benchmark.pedantic(generate_sec7, rounds=1, iterations=1)

    # The paper's headline: full detection, no false alarms.
    assert result.coverage == 1.0
    assert result.false_positive_free
    # Reaction (§9): hard faults force the driver to max current.
    open_coil = result.result_for("open-coil")
    assert open_coil.final_code == 127
    assert FailureKind.MISSING_OSCILLATION in open_coil.detections

    save_result(
        "sec7_fault_coverage",
        coverage_table(result) + "\n" + coverage_summary(result),
    )
