"""Fig 16 — oscillator startup after enabling the driver.

Regenerated twice, at two levels of abstraction that must agree:

* carrier-resolution MNA transient of the Fig 1 netlist,
* the averaged envelope model.

The paper's claim is a *fast* startup thanks to the code-105 POR
preset; we check exponential growth, settling within tens of carrier
cycles for the bench tank, and agreement of the two models.
"""

import numpy as np

from repro.analysis import envelope_by_peaks, oscillation_frequency, render_table
from repro.core import OscillatorNetlist
from repro.envelope import EnvelopeModel, RLCTank, TanhLimiter

from common import save_result

TANK = RLCTank.from_frequency_and_q(4e6, 15.0, 1e-6)
LIMITER = TanhLimiter(gm=6e-3, i_max=2e-3)


def generate_fig16():
    netlist = OscillatorNetlist(TANK, vref=2.5)
    t_stop = 80 / TANK.frequency
    result = netlist.run_startup(code=0, t_stop=t_stop, limiter=LIMITER)
    return result, t_stop


def test_fig16_startup(benchmark):
    result, t_stop = benchmark.pedantic(generate_fig16, rounds=1, iterations=1)

    diff = result.differential
    envelope = envelope_by_peaks(diff)

    # Growth from the seed, settling to the limited amplitude.
    assert envelope.y[-1] > 10 * envelope.y[0]
    model = EnvelopeModel(TANK, LIMITER)
    a_predicted = model.steady_state()
    a_measured = float(envelope.y[-1])
    assert abs(a_measured / a_predicted - 1.0) < 0.05

    # Carrier frequency equals the tank resonance.
    tail = diff.window(0.6 * t_stop, t_stop)
    f = oscillation_frequency(tail)
    assert abs(f / TANK.frequency - 1.0) < 0.01

    # 90 % settling measured in carrier cycles.
    target = 0.9 * a_measured
    above = np.where(envelope.y >= target)[0]
    t90 = float(envelope.t[above[0]])
    cycles_to_90 = t90 * TANK.frequency

    rows = [
        ("tank", f"{TANK.frequency / 1e6:.1f} MHz, Q={TANK.quality_factor:.0f}"),
        ("steady amplitude (MNA)", f"{a_measured:.3f} V pk"),
        ("steady amplitude (envelope model)", f"{a_predicted:.3f} V pk"),
        ("carrier frequency", f"{f / 1e6:.3f} MHz"),
        ("90% settling", f"{t90 * 1e6:.2f} us = {cycles_to_90:.0f} cycles"),
    ]
    save_result(
        "fig16_startup",
        render_table(["quantity", "value"], rows, title="Fig 16: oscillator startup"),
    )
