"""Fig 2 — static driver output current (linear slope, limit at ±Im).

Regenerates the normalized I-V characteristic of the current-limited
driver and checks its defining shape properties.
"""

import numpy as np

from repro.core import static_iv_curve
from repro.envelope import HardLimiter

from common import save_result
from repro.analysis import render_series


def generate_fig02():
    limiter = HardLimiter(gm=5e-3, i_max=1e-3)
    v, i = static_iv_curve(limiter, v_max=1.0, n=201)
    return limiter, v, i


def test_fig02_driver_iv(benchmark):
    limiter, v, i = benchmark(generate_fig02)

    # Shape assertions (the Fig 2 picture):
    # 1. hard limits at ±Im,
    assert i.max() == limiter.i_max
    assert i.min() == -limiter.i_max
    # 2. linear with slope gm through the origin,
    mid = np.abs(v) < 0.5 * limiter.corner_voltage
    slope = np.polyfit(v[mid], i[mid], 1)[0]
    assert abs(slope / limiter.gm - 1.0) < 1e-9
    # 3. odd symmetric.
    assert np.allclose(i, -i[::-1])

    save_result(
        "fig02_driver_iv",
        render_series(
            v,
            i * 1e3,
            x_label="v (V)",
            y_label="i (mA)",
            title="Fig 2: driver current (static), gm=5 mS, Im=1 mA",
            max_points=25,
        ),
    )
