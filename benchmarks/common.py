"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper, prints it,
and persists the rendered text under ``benchmarks/results/`` so the
artifacts survive pytest's output capture.  EXPERIMENTS.md summarizes
paper-vs-measured from these artifacts.
"""

from __future__ import annotations

import pathlib

from repro.core.oscillator_system import OscillatorConfig
from repro.envelope import RLCTank

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print the artifact and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def standard_tank() -> RLCTank:
    """Baseline tank for system-level benches (4 MHz, Q=30, 1 uH)."""
    return RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6)


def standard_config(**overrides) -> OscillatorConfig:
    defaults = dict(tank=standard_tank())
    defaults.update(overrides)
    return OscillatorConfig(**defaults)
