"""§Abstract — "low EMC emissions": harmonic content of the coil signal.

Mechanism quantified here: even though the limited driver current is
rich in odd harmonics (a hard-limited current tends to a square wave,
3rd harmonic at -9.5 dB), the high-Q parallel tank presents its Rp
only at resonance — harmonic *currents* see a collapsed impedance and
produce almost no harmonic *voltage* on the coil.  The radiating
quantity (coil voltage/current) stays nearly sinusoidal.

We measure both on the carrier-level MNA simulation: THD of the driver
current vs THD of the tank differential voltage, plus the analytic
tank rejection factors.
"""

import numpy as np

from repro.analysis import Waveform, harmonic_spectrum, render_table, tank_harmonic_rejection
from repro.core import OscillatorNetlist
from repro.envelope import RLCTank, TanhLimiter

from common import save_result

TANK = RLCTank.from_frequency_and_q(4e6, 25.0, 1e-6)
LIMITER = TanhLimiter(gm=8e-3, i_max=2e-3)


def generate_emc():
    netlist = OscillatorNetlist(TANK, vref=2.5)
    t_stop = 120 / TANK.frequency
    result = netlist.run_startup(code=0, t_stop=t_stop, limiter=LIMITER)
    diff = result.differential.window(0.6 * t_stop, t_stop)
    # Driver current waveform i(t) = -f(v_diff(t)).
    i_drv = Waveform(diff.t, LIMITER.sample(diff.y), name="i_drv")
    v_spec = harmonic_spectrum(diff, TANK.frequency, n_harmonics=5)
    i_spec = harmonic_spectrum(i_drv, TANK.frequency, n_harmonics=5)
    return v_spec, i_spec


def test_emc_harmonics(benchmark):
    v_spec, i_spec = benchmark.pedantic(generate_emc, rounds=1, iterations=1)

    # The driver current is heavily distorted (deep limiting)...
    assert i_spec.thd() > 0.10
    # ...but the coil voltage is nearly sinusoidal: the tank filters.
    assert v_spec.thd() < 0.03
    assert v_spec.thd() < i_spec.thd() / 5.0
    # The analytic tank rejection explains it per harmonic: the
    # voltage harmonic is about the current harmonic times the tank's
    # off-resonance impedance ratio (factor ~3 slack for envelope
    # ripple and quadrature leakage).
    c_diff = TANK.differential_capacitance
    rp = TANK.parallel_resistance
    for order in (3, 5):
        rejection = tank_harmonic_rejection(TANK.inductance, c_diff, rp, order)
        assert rejection < 0.1
        v_rel = v_spec.harmonic(order) / v_spec.fundamental
        i_rel = i_spec.harmonic(order) / i_spec.fundamental
        assert v_rel < 3.0 * i_rel * rejection + 1e-3

    rows = [
        (
            k,
            f"{20*np.log10(max(i_spec.harmonic(k)/i_spec.fundamental, 1e-12)):.1f} dBc",
            f"{20*np.log10(max(v_spec.harmonic(k)/v_spec.fundamental, 1e-12)):.1f} dBc",
            f"{20*np.log10(tank_harmonic_rejection(TANK.inductance, c_diff, rp, k)):.1f} dB",
        )
        for k in (2, 3, 4, 5)
    ]
    save_result(
        "emc_harmonics",
        render_table(
            ["harmonic", "driver current", "coil voltage", "tank rejection"],
            rows,
            title=(
                "EMC: harmonic levels (limited driver vs filtered coil), "
                f"THD i_drv = {i_spec.thd()*100:.1f} %, "
                f"THD v_coil = {v_spec.thd()*100:.2f} %"
            ),
        ),
    )
