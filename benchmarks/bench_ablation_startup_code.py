"""Ablation — POR preset code (§4).

Paper: "To reduce current consumption during start up (to approx. 40 %
of the maximum current consumption), a power on reset signal sets the
current limitation to code 105, which is lower than the maximum code,
but is enough to start the oscillator even if maximum code for full
amplitude is required."

We sweep the POR code and measure startup current fraction and whether
the oscillator still starts on the worst-case (lowest Q) tank.
"""

from repro.core import driver_limiter_for_code, multiplication_factor, startup_current_fraction
from repro.envelope import RLCTank, steady_state_amplitude

from common import save_result
from repro.analysis import render_table

POR_CANDIDATES = (40, 70, 90, 105, 127)
#: Worst-case application tank: poorest quality the product supports.
WORST_TANK = RLCTank.from_frequency_and_q(4e6, 8.0, 1e-6)


def starts_with_por_code(por_code: int) -> bool:
    """Does the oscillation condition hold at the POR preset?

    Evaluated on the envelope model in isolation — in the full system
    the safety reaction would eventually rescue a non-starting preset
    by forcing the maximum code, masking the ablation.
    """
    limiter = driver_limiter_for_code(por_code)
    return steady_state_amplitude(WORST_TANK, limiter) > 0.0


def generate_ablation():
    rows = []
    for code in POR_CANDIDATES:
        rows.append(
            {
                "code": code,
                "fraction": multiplication_factor(code) / multiplication_factor(127),
                "starts_worst_case": starts_with_por_code(code),
            }
        )
    return rows


def test_ablation_startup_code(benchmark):
    rows = benchmark.pedantic(generate_ablation, rounds=1, iterations=1)
    by_code = {r["code"]: r for r in rows}

    # The paper's code 105: ~40 % of max current, still starts.
    assert abs(by_code[105]["fraction"] - 0.42) < 0.02
    assert abs(startup_current_fraction() - by_code[105]["fraction"]) < 1e-12
    assert by_code[105]["starts_worst_case"]
    # Maximum code obviously starts, at full consumption.
    assert by_code[127]["starts_worst_case"]
    assert by_code[127]["fraction"] == 1.0
    # A much lower preset fails on the worst-case tank (insufficient
    # gm / current) — why 105 and not something tiny.
    assert not by_code[40]["starts_worst_case"]

    save_result(
        "ablation_startup_code",
        render_table(
            ["POR code", "startup current / max", "starts worst-case tank"],
            [
                (
                    r["code"],
                    f"{r['fraction'] * 100:.0f} %",
                    "yes" if r["starts_worst_case"] else "NO",
                )
                for r in rows
            ],
            title="Ablation §4: POR preset code (paper: 105 -> ~40 %)",
        ),
    )
