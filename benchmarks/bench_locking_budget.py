"""Extension — §8: "the two systems are running at the same frequency".

For the redundant pair this is not free: two independently-built LC
oscillators only share a frequency if the mutual coil coupling pulls
them into injection lock.  Adler's lock range is k/(2Q) of the carrier
— this bench computes the component-tolerance budget that guarantees
lock across the paper's tank-quality range, plus the Leeson phase
noise at the regulated amplitude (design levers: Q and amplitude).
"""

import pytest

from repro.envelope import InjectionLocking, RLCTank
from repro.envelope.locking import frequency_mismatch_from_tolerances
from repro.envelope.phase_noise import LeesonModel

from common import save_result
from repro.analysis import render_table

COUPLING = 0.6
Q_VALUES = (8.0, 30.0, 100.0, 300.0)


def generate():
    rows = []
    for q in Q_VALUES:
        tank = RLCTank.from_frequency_and_q(4e6, q, 1e-6)
        lock = InjectionLocking(tank, injection_ratio=COUPLING)
        noise = LeesonModel(tank, amplitude_peak=1.35)
        rows.append(
            {
                "q": q,
                "lock_ppm": lock.relative_lock_range * 1e6,
                "budget": lock.max_tolerable_detuning(),
                "noise_10k": noise.phase_noise_dbc(10e3),
            }
        )
    return rows


def test_locking_budget(benchmark):
    rows = benchmark.pedantic(generate, rounds=1, iterations=1)
    by_q = {r["q"]: r for r in rows}

    # Lock range shrinks as 1/Q; at Q=30 the budget is ±1 % — 0.5 %
    # parts lock, 1 %+1 % parts do not.
    assert by_q[30.0]["budget"] == pytest.approx(0.01, rel=1e-6)
    lock30 = InjectionLocking(
        RLCTank.from_frequency_and_q(4e6, 30.0, 1e-6), COUPLING
    )
    assert lock30.locks(frequency_mismatch_from_tolerances(0.004, 0.004))
    assert not lock30.locks(frequency_mismatch_from_tolerances(0.01, 0.01))
    # High-Q tanks demand tighter parts...
    assert by_q[300.0]["budget"] < by_q[8.0]["budget"] / 10
    # ...but reward with lower phase noise (the Leeson corner falls as
    # 1/Q; at fixed amplitude the net 10 kHz improvement is ~10 dB
    # over this Q span because the signal power also drops with Rp).
    assert by_q[300.0]["noise_10k"] < by_q[8.0]["noise_10k"] - 8

    save_result(
        "locking_budget",
        render_table(
            ["Q", "lock range (ppm of f0)", "tolerance budget", "L(10 kHz) dBc/Hz"],
            [
                (
                    f"{r['q']:.0f}",
                    f"{r['lock_ppm']:.0f}",
                    f"±{r['budget'] * 100:.2f} %",
                    f"{r['noise_10k']:.1f}",
                )
                for r in rows
            ],
            title=(
                "Extension §8: injection-lock budget (k = 0.6) and Leeson "
                "phase noise at 2.7 Vpp"
            ),
        ),
    )
