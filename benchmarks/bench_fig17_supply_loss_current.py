"""Fig 17 — DC current through LC1/LC2 with Vdd floating.

Paper shape: a dead zone for |V| below ~1.5 V differential (the bulk
networks need a threshold/diode drop to conduct), sub-milliamp current
at ±3 V, and "for the maximum operating amplitude of 2.7 Vpp the
unsupplied system does not significantly influence the other system."
"""

import numpy as np

from repro.core import run_supply_loss_sweep

from common import save_result
from repro.analysis import render_series


def generate_fig17():
    return run_supply_loss_sweep("fig11", v_max=3.0, n_points=121)


def test_fig17_supply_loss_current(benchmark):
    result = benchmark.pedantic(generate_fig17, rounds=1, iterations=1)

    # Dead zone around zero.
    assert abs(result.current_at(0.0)) < 1e-6
    assert abs(result.current_at(0.75)) < 10e-6
    assert abs(result.current_at(-0.75)) < 10e-6
    # Sub-~1 mA current at the sweep extremes (paper: ~±0.6-0.8 mA).
    assert 0.1e-3 < abs(result.current_at(3.0)) < 1.5e-3
    assert 0.1e-3 < abs(result.current_at(-3.0)) < 1.5e-3
    # Negligible at the 2.7 Vpp operating amplitude.
    assert abs(result.current_at(1.35)) < 150e-6
    assert abs(result.current_at(-1.35)) < 150e-6
    # Odd-symmetric S shape: monotonic current.
    assert np.all(np.diff(result.i_lc1) > -5e-6)

    save_result(
        "fig17_supply_loss_current",
        render_series(
            result.v_diff,
            result.i_lc1 * 1e3,
            x_label="V(LC1-LC2) (V)",
            y_label="I (mA)",
            title="Fig 17: current through LC1/LC2, Vdd floating (fig11 driver)",
            max_points=31,
        ),
    )
