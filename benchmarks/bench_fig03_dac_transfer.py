"""Fig 3 — current multiplication factor of the 7-bit PWL exponential
DAC (lin + log scale), including the per-segment step values 1,1,2,...,64."""

import numpy as np

from repro.core import ExponentialPWLDAC, SEGMENTS

from common import save_result
from repro.analysis import render_table


def generate_fig03():
    dac = ExponentialPWLDAC(i_lsb=1.0)  # factors, not amps
    return dac, dac.transfer()


def test_fig03_dac_transfer(benchmark):
    dac, factors = benchmark(generate_fig03)

    # Paper anchors: 0:1984 range over 128 codes, 8 segments with
    # doubling steps, endpoint factors of Fig 3.
    assert factors[0] == 0
    assert factors[16] == 16
    assert factors[127] == 1984
    for segment in SEGMENTS:
        assert factors[segment.code_min] == segment.range_min
        assert factors[segment.code_max] == segment.range_max
    steps = [s.step for s in SEGMENTS]
    assert steps == [1, 1, 2, 4, 8, 16, 32, 64]
    # Monotonic (ideal DAC).
    assert np.all(np.diff(factors) >= 0)

    rows = [
        (
            s.index,
            s.step,
            f"{s.code_min}..{s.code_max}",
            s.range_min,
            s.range_max,
            f"{np.log2(max(s.range_min, 1)):.1f}",
        )
        for s in SEGMENTS
    ]
    save_result(
        "fig03_dac_transfer",
        render_table(
            ["segment", "step", "codes", "M min", "M max", "log2(M min)"],
            rows,
            title="Fig 3: multiplication factor Mn, 7-bit PWL exponential DAC",
        ),
    )
